package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the rolling time-series layer on top of the cumulative
// registry: windowed counters and histograms that answer "what is the
// rate *right now*" and "what is p99 *over the last minute*" — the
// rate-of-change signals an operator (or an admission controller)
// needs, which a counter that only ever grows cannot provide.
//
// Design: every windowed instrument owns a ring of per-tick buckets
// rotated lazily against a single wall-clock reading. An observation
// stamps the bucket for its tick (resetting the bucket if the ring has
// wrapped past it) and then does one plain atomic add, so the
// steady-state write path is a cached-tick load, a stamp check, and the
// add — inside the ≤2× budget versus the cumulative histogram (see
// BenchmarkWindowObserve and the BENCH_GUARD-gated guard). Reads merge
// the buckets inside a horizon on demand; nothing runs in the
// background, so with an injected clock the whole layer is
// deterministic in tests.
//
// The clock is amortized on the write path: reading the wall clock
// costs more than the entire cumulative observe (~60ns vs ~19ns here),
// so writers use a cached tick that is refreshed (a) on every read-side
// call — Rate, Window, Series, Dump all take a fresh reading — and
// (b) every windowClockEvery-th write into any one bucket, a trigger
// that rides the atomic add the write already pays for. The worst case
// is windowClockEvery-1 observations attributed to the previous tick
// around a tick boundary — the same one-tick attribution error the
// rotation path already tolerates for stale writers, invisible at
// monitoring granularity. Injected clocks (SetNow) bypass the cache
// entirely so tests see exact attribution.
//
// Windowed instruments are write-through: WindowSet.Counter also
// registers (and feeds) the cumulative instrument of the same name in
// the underlying registry, so /metrics keeps its monotone series and
// one call site updates both.

// WindowConfig fixes the ring geometry: the per-bucket tick width and
// the merge horizons served on read. The largest horizon sizes the
// ring (maxHorizon/Tick + 1 buckets; the extra bucket absorbs the
// current, still-filling tick).
type WindowConfig struct {
	Tick     time.Duration
	Horizons []time.Duration
}

// DefaultWindowConfig is the geometry DefaultWindows uses: 2-second
// buckets merged over 10s, 1m, and 5m horizons (151 buckets).
var DefaultWindowConfig = WindowConfig{
	Tick:     2 * time.Second,
	Horizons: []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute},
}

func (c WindowConfig) normalize() WindowConfig {
	if c.Tick <= 0 {
		c.Tick = DefaultWindowConfig.Tick
	}
	if len(c.Horizons) == 0 {
		c.Horizons = DefaultWindowConfig.Horizons
	}
	hs := append([]time.Duration(nil), c.Horizons...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for i, h := range hs {
		if h < c.Tick {
			hs[i] = c.Tick
		}
	}
	c.Horizons = hs
	return c
}

// formatHorizon renders a horizon as the short label used in dumps and
// SLO reports ("10s", "1m", "5m").
func formatHorizon(h time.Duration) string {
	switch {
	case h >= time.Minute && h%time.Minute == 0:
		return fmt.Sprintf("%dm", h/time.Minute)
	case h >= time.Second && h%time.Second == 0:
		return fmt.Sprintf("%ds", h/time.Second)
	default:
		return h.String()
	}
}

// WindowSet holds windowed instruments sharing one config and one
// clock, created on first use and living forever like their cumulative
// twins. All methods are safe for concurrent use.
type WindowSet struct {
	reg   *Registry
	cfg   WindowConfig
	slots int
	nowFn atomic.Value // func() time.Time

	// Write-path clock cache: reading time.Now costs ~3× the rest of the
	// observe path, so writers reuse the last tick any reader (or an
	// amortized writer, see windowClockMask) computed. custom is set
	// while a test clock is injected; injected clocks bypass the cache so
	// rotation stays exactly deterministic.
	custom     atomic.Bool
	cachedTick atomic.Int64

	mu       sync.RWMutex
	counters map[string]*WindowedCounter
	hists    map[string]*WindowedHistogram
}

// windowClockMask amortizes wall-clock reads on the write path: a
// writer refreshes the cached tick when the per-bucket counter it just
// incremented crosses a multiple of windowClockMask+1. The trigger
// rides an atomic add the write already pays for, and fires once per
// ~32 observations in aggregate regardless of how the values spread
// across buckets.
const windowClockMask = 31

// NewWindowSet creates a window set whose instruments write through to
// cumulative twins in reg.
func NewWindowSet(reg *Registry, cfg WindowConfig) *WindowSet {
	cfg = cfg.normalize()
	maxH := cfg.Horizons[len(cfg.Horizons)-1]
	s := &WindowSet{
		reg:      reg,
		cfg:      cfg,
		slots:    int(maxH/cfg.Tick) + 1,
		counters: make(map[string]*WindowedCounter),
		hists:    make(map[string]*WindowedHistogram),
	}
	s.nowFn.Store(time.Now)
	return s
}

// DefaultWindows is the process-wide window set over the Default
// registry; /debug/timeseries serves it.
var DefaultWindows = NewWindowSet(Default, DefaultWindowConfig)

// SetNow injects the clock (nil restores time.Now). Tests inject a
// fake clock so bucket rotation is deterministic — no sleeps. Set it
// before the instruments observe; swapping clocks mid-flight is safe
// but re-attributes in-flight observations.
func (s *WindowSet) SetNow(fn func() time.Time) {
	if fn == nil {
		s.nowFn.Store(time.Now)
		s.custom.Store(false)
		return
	}
	s.nowFn.Store(fn)
	s.custom.Store(true)
}

// Config returns the normalized ring geometry.
func (s *WindowSet) Config() WindowConfig { return s.cfg }

// nowTick takes a fresh clock reading and refreshes the write-path
// cache. Every read-side entry point (Total, Rate, Window, Series,
// Dump) comes through here, so a polled process never serves stale
// ticks.
func (s *WindowSet) nowTick() int64 {
	t := s.nowFn.Load().(func() time.Time)().UnixNano() / int64(s.cfg.Tick)
	s.cachedTick.Store(t)
	return t
}

// writeTick is the hot-path clock: the cached tick, except under an
// injected test clock (exact attribution) or before the first reading.
func (s *WindowSet) writeTick() int64 {
	if s.custom.Load() {
		return s.nowTick()
	}
	if t := s.cachedTick.Load(); t != 0 {
		return t
	}
	return s.nowTick()
}

func (s *WindowSet) horizonTicks(h time.Duration) int {
	k := int((h + s.cfg.Tick - 1) / s.cfg.Tick)
	if k < 1 {
		k = 1
	}
	if k > s.slots-1 {
		k = s.slots - 1
	}
	return k
}

// winRing is the shared rotation machinery: per-slot tick stamps
// (stored as tick+1 so zero means "never used") and a lazy, mutex-
// guarded reset of a slot the ring has wrapped past. The steady-state
// path — observing into an already-stamped bucket — is a single atomic
// load and compare.
type winRing struct {
	slots  int
	stamps []atomic.Int64
	mu     sync.Mutex
	clear  func(slot int)
}

func newWinRing(slots int, clear func(int)) winRing {
	return winRing{slots: slots, stamps: make([]atomic.Int64, slots), clear: clear}
}

// slotFor returns the slot for tick, rotating (resetting) it first if
// it still holds an older tick's data.
func (r *winRing) slotFor(tick int64) int {
	s := int(tick % int64(r.slots))
	if r.stamps[s].Load() != tick+1 {
		r.rotate(s, tick)
	}
	return s
}

func (r *winRing) rotate(s int, tick int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Another writer may have rotated while we waited; and a stale
	// writer (clock read before a long preemption) must not rotate a
	// slot backwards and wipe newer data — its observation lands in the
	// newer bucket instead, a one-tick attribution error.
	if r.stamps[s].Load() >= tick+1 {
		return
	}
	r.clear(s)
	r.stamps[s].Store(tick + 1)
}

// visit calls fn for every slot holding a tick in (nowTick-k, nowTick].
func (r *winRing) visit(nowTick int64, k int, fn func(slot int, tick int64)) {
	for s := 0; s < r.slots; s++ {
		st := r.stamps[s].Load()
		if st == 0 {
			continue
		}
		tick := st - 1
		if tick > nowTick-int64(k) && tick <= nowTick {
			fn(s, tick)
		}
	}
}

// TickCount is one bucket of a counter series.
type TickCount struct {
	Tick int64 `json:"t"`
	N    int64 `json:"n"`
}

// WindowedCounter is a counter with a per-tick ring beside its
// cumulative twin. Inc/Add update both.
type WindowedCounter struct {
	set  *WindowSet
	c    *Counter
	ring winRing
	vals []atomic.Int64
}

// Counter returns the windowed counter with this name, creating it
// (and its cumulative twin in the registry) if needed.
func (s *WindowSet) Counter(name, help string) *WindowedCounter {
	s.mu.RLock()
	w, ok := s.counters[name]
	s.mu.RUnlock()
	if ok {
		return w
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok = s.counters[name]; ok {
		return w
	}
	w = &WindowedCounter{set: s, c: s.reg.Counter(name, help), vals: make([]atomic.Int64, s.slots)}
	w.ring = newWinRing(s.slots, func(slot int) { w.vals[slot].Store(0) })
	s.counters[name] = w
	return w
}

// Inc adds one.
func (w *WindowedCounter) Inc() { w.Add(1) }

// Add adds n to the cumulative twin and the current tick's bucket.
func (w *WindowedCounter) Add(n int64) {
	if n <= 0 {
		return
	}
	w.c.Add(n)
	slot := w.ring.slotFor(w.set.writeTick())
	if w.vals[slot].Add(n)&windowClockMask < n {
		w.set.nowTick() // amortized clock refresh
	}
}

// Value returns the cumulative total since process start.
func (w *WindowedCounter) Value() int64 { return w.c.Value() }

// Total returns the count observed within the horizon (the merged
// buckets, including the current partial tick).
func (w *WindowedCounter) Total(h time.Duration) int64 {
	var total int64
	w.ring.visit(w.set.nowTick(), w.set.horizonTicks(h), func(slot int, _ int64) {
		total += w.vals[slot].Load()
	})
	return total
}

// Rate returns events per second over the horizon.
func (w *WindowedCounter) Rate(h time.Duration) float64 {
	secs := h.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(w.Total(h)) / secs
}

// Series returns the last n per-tick counts, oldest first, ending at
// the current tick. Ticks with no bucket report zero.
func (w *WindowedCounter) Series(n int) []TickCount {
	if n < 1 {
		n = 1
	}
	if n > w.set.slots-1 {
		n = w.set.slots - 1
	}
	cur := w.set.nowTick()
	out := make([]TickCount, 0, n)
	for t := cur - int64(n) + 1; t <= cur; t++ {
		p := TickCount{Tick: t}
		slot := int(t % int64(w.ring.slots))
		if t >= 0 && w.ring.stamps[slot].Load() == t+1 {
			p.N = w.vals[slot].Load()
		}
		out = append(out, p)
	}
	return out
}

// Windowed histogram buckets: the same log-linear scheme as the
// cumulative Histogram but with 2 sub-bucket bits instead of 5 —
// 248 buckets per tick instead of 1888, bounding a windowed quantile's
// relative error at ~2^-2/2 = 12.5% in exchange for ~8× less ring
// memory (a 151-slot ring costs ~300 KiB per instrument). Monitoring-
// grade: a rolling p99 that reads 47ms when the truth is 51ms still
// trips a 50ms SLO within a tick or two.
const (
	winSubBits    = 2
	winSubBuckets = 1 << winSubBits
	winNumBuckets = (64 - winSubBits) * winSubBuckets
)

func winBucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < winSubBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int((uint64(v) >> uint(exp-winSubBits)) & (winSubBuckets - 1))
	return (exp-winSubBits+1)*winSubBuckets + sub
}

func winBucketLow(idx int) int64 {
	if idx < winSubBuckets {
		return int64(idx)
	}
	block := idx / winSubBuckets
	sub := idx % winSubBuckets
	exp := block + winSubBits - 1
	return int64(1)<<uint(exp) | int64(sub)<<uint(exp-winSubBits)
}

func winBucketMid(idx int) int64 {
	low := winBucketLow(idx)
	if idx < winSubBuckets {
		return low
	}
	if idx+1 >= winNumBuckets {
		return low
	}
	return low + (winBucketLow(idx+1)-low)/2
}

// TickHist is one bucket of a histogram series: the tick's observation
// count and its p99.
type TickHist struct {
	Tick  int64 `json:"t"`
	Count int64 `json:"n"`
	P99   int64 `json:"p99"`
}

// WindowSnapshot is the merged view of a histogram over one horizon.
type WindowSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Rate  float64 `json:"rate"` // observations per second
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Mean returns the arithmetic mean over the window, or 0 when empty.
func (s WindowSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// WindowedHistogram is a histogram with a per-tick ring of coarse
// log-scale buckets beside its cumulative twin. Observe updates both.
// The ring holds only the bucket counters: a tick's observation count
// is the sum of its buckets and its value sum is reconstructed from
// bucket midpoints on read, so windowed Count is exact while windowed
// Sum (and Mean) carry the same ~12.5% bucket-resolution error as the
// quantiles. Exact totals live on the cumulative twin.
type WindowedHistogram struct {
	set    *WindowSet
	h      *Histogram
	ring   winRing
	counts []atomic.Int64 // slots × winNumBuckets, slot-major
}

// Histogram returns the windowed histogram with this name, creating it
// (and its cumulative twin in the registry) if needed.
func (s *WindowSet) Histogram(name, help string) *WindowedHistogram {
	s.mu.RLock()
	w, ok := s.hists[name]
	s.mu.RUnlock()
	if ok {
		return w
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok = s.hists[name]; ok {
		return w
	}
	w = &WindowedHistogram{
		set:    s,
		h:      s.reg.Histogram(name, help),
		counts: make([]atomic.Int64, s.slots*winNumBuckets),
	}
	w.ring = newWinRing(s.slots, func(slot int) {
		base := slot * winNumBuckets
		for i := 0; i < winNumBuckets; i++ {
			w.counts[base+i].Store(0)
		}
	})
	s.hists[name] = w
	return w
}

// Observe records a value into the cumulative twin and the current
// tick's bucket. Negative values clamp to zero.
func (w *WindowedHistogram) Observe(v int64) {
	w.h.Observe(v)
	if v < 0 {
		v = 0
	}
	slot := w.ring.slotFor(w.set.writeTick())
	if w.counts[slot*winNumBuckets+winBucketIndex(v)].Add(1)&windowClockMask == 0 {
		w.set.nowTick() // amortized clock refresh
	}
}

// ObserveDuration records a latency in nanoseconds.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) { w.Observe(int64(d)) }

// Cumulative returns the since-start twin.
func (w *WindowedHistogram) Cumulative() *Histogram { return w.h }

// Window merges the buckets inside the horizon into count, sum, rate,
// and rolling p50/p95/p99.
func (w *WindowedHistogram) Window(h time.Duration) WindowSnapshot {
	merged := make([]int64, winNumBuckets)
	var snap WindowSnapshot
	w.ring.visit(w.set.nowTick(), w.set.horizonTicks(h), func(slot int, _ int64) {
		base := slot * winNumBuckets
		for i := 0; i < winNumBuckets; i++ {
			merged[i] += w.counts[base+i].Load()
		}
	})
	// Count and quantiles come from the same summed bucket mass, so a
	// concurrent observer cannot push a quantile past the last bucket;
	// Sum is reconstructed from bucket midpoints (see the type comment).
	var total int64
	for i, c := range merged {
		total += c
		snap.Sum += c * winBucketMid(i)
	}
	snap.Count = total
	if secs := h.Seconds(); secs > 0 {
		snap.Rate = float64(snap.Count) / secs
	}
	snap.P50 = winQuantile(merged, total, 0.50)
	snap.P95 = winQuantile(merged, total, 0.95)
	snap.P99 = winQuantile(merged, total, 0.99)
	return snap
}

// Series returns the last n per-tick buckets (count and p99), oldest
// first, ending at the current tick.
func (w *WindowedHistogram) Series(n int) []TickHist {
	if n < 1 {
		n = 1
	}
	if n > w.set.slots-1 {
		n = w.set.slots - 1
	}
	cur := w.set.nowTick()
	out := make([]TickHist, 0, n)
	var scratch []int64
	for t := cur - int64(n) + 1; t <= cur; t++ {
		p := TickHist{Tick: t}
		slot := int(t % int64(w.ring.slots))
		if t >= 0 && w.ring.stamps[slot].Load() == t+1 {
			if scratch == nil {
				scratch = make([]int64, winNumBuckets)
			}
			base := slot * winNumBuckets
			var total int64
			for i := 0; i < winNumBuckets; i++ {
				scratch[i] = w.counts[base+i].Load()
				total += scratch[i]
			}
			p.Count = total
			if total > 0 {
				p.P99 = winQuantile(scratch, total, 0.99)
			}
		}
		out = append(out, p)
	}
	return out
}

func winQuantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum > rank {
			return winBucketMid(i)
		}
	}
	return winBucketMid(len(counts) - 1)
}

// CounterSeries is one windowed counter in a TimeseriesDump.
type CounterSeries struct {
	Total  int64              `json:"total"`
	Rates  map[string]float64 `json:"rates"`
	Series []TickCount        `json:"series"`
}

// HistogramSeries is one windowed histogram in a TimeseriesDump.
type HistogramSeries struct {
	Count   int64                     `json:"count"`
	Windows map[string]WindowSnapshot `json:"windows"`
	Series  []TickHist                `json:"series"`
}

// TimeseriesDump is the JSON shape of /debug/timeseries: every
// windowed instrument's per-horizon rollups plus its recent per-tick
// series, the registry's gauges, and (when the serving layer attaches
// one) the health report. Series contain only ticks strictly after the
// request cursor; Cursor echoes the newest tick so a poller passes it
// back to receive deltas.
type TimeseriesDump struct {
	TickNS     int64                      `json:"tick_ns"`
	NowTick    int64                      `json:"now_tick"`
	Cursor     int64                      `json:"cursor"`
	Horizons   []string                   `json:"horizons"`
	Counters   map[string]CounterSeries   `json:"counters"`
	Histograms map[string]HistogramSeries `json:"histograms"`
	Gauges     map[string]int64           `json:"gauges"`
	Health     *HealthReport              `json:"health,omitempty"`
}

// Dump snapshots every windowed instrument. Series hold at most
// maxSeries ticks (default 60 when <= 0) and only ticks strictly after
// cursor (pass 0 for a full snapshot).
func (s *WindowSet) Dump(cursor int64, maxSeries int) TimeseriesDump {
	if maxSeries <= 0 {
		maxSeries = 60
	}
	if maxSeries > s.slots-1 {
		maxSeries = s.slots - 1
	}
	d := TimeseriesDump{
		TickNS:   int64(s.cfg.Tick),
		NowTick:  s.nowTick(),
		Horizons: make([]string, 0, len(s.cfg.Horizons)),
	}
	d.Cursor = d.NowTick
	for _, h := range s.cfg.Horizons {
		d.Horizons = append(d.Horizons, formatHorizon(h))
	}
	s.mu.RLock()
	counters := make(map[string]*WindowedCounter, len(s.counters))
	for n, w := range s.counters {
		counters[n] = w
	}
	hists := make(map[string]*WindowedHistogram, len(s.hists))
	for n, w := range s.hists {
		hists[n] = w
	}
	s.mu.RUnlock()
	d.Counters = make(map[string]CounterSeries, len(counters))
	for name, w := range counters {
		cs := CounterSeries{Total: w.Value(), Rates: make(map[string]float64, len(s.cfg.Horizons))}
		for _, h := range s.cfg.Horizons {
			cs.Rates[formatHorizon(h)] = w.Rate(h)
		}
		cs.Series = trimTicksAfter(w.Series(maxSeries), cursor)
		d.Counters[name] = cs
	}
	d.Histograms = make(map[string]HistogramSeries, len(hists))
	for name, w := range hists {
		hs := HistogramSeries{
			Count:   w.h.count.Load(),
			Windows: make(map[string]WindowSnapshot, len(s.cfg.Horizons)),
		}
		for _, h := range s.cfg.Horizons {
			hs.Windows[formatHorizon(h)] = w.Window(h)
		}
		series := w.Series(maxSeries)
		kept := series[:0]
		for _, p := range series {
			if p.Tick > cursor {
				kept = append(kept, p)
			}
		}
		hs.Series = kept
		d.Histograms[name] = hs
	}
	d.Gauges = s.reg.GaugeValues()
	return d
}

func trimTicksAfter(series []TickCount, cursor int64) []TickCount {
	kept := series[:0]
	for _, p := range series {
		if p.Tick > cursor {
			kept = append(kept, p)
		}
	}
	return kept
}
