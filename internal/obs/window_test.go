package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a WindowSet deterministically: tests advance it
// explicitly instead of sleeping.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock(start time.Duration) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(int64(start))
	return c
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func (c *fakeClock) attach(s *WindowSet)     { s.SetNow(c.now) }
func testWindowSet(tick time.Duration, horizons ...time.Duration) (*WindowSet, *fakeClock) {
	s := NewWindowSet(NewRegistry(), WindowConfig{Tick: tick, Horizons: horizons})
	// Start well past zero so every tick index is positive.
	c := newFakeClock(1000 * time.Hour)
	c.attach(s)
	return s, c
}

func TestWindowConfigNormalize(t *testing.T) {
	c := WindowConfig{Tick: time.Second,
		Horizons: []time.Duration{time.Minute, 500 * time.Millisecond, 10 * time.Second}}.normalize()
	if c.Horizons[0] != time.Second || c.Horizons[1] != 10*time.Second || c.Horizons[2] != time.Minute {
		t.Fatalf("horizons = %v (want sorted, sub-tick clamped to tick)", c.Horizons)
	}
	d := WindowConfig{}.normalize()
	if d.Tick != DefaultWindowConfig.Tick || len(d.Horizons) != len(DefaultWindowConfig.Horizons) {
		t.Fatalf("zero config did not default: %+v", d)
	}
}

func TestFormatHorizon(t *testing.T) {
	for h, want := range map[time.Duration]string{
		10 * time.Second: "10s", time.Minute: "1m", 5 * time.Minute: "5m",
		90 * time.Second: "90s", 1500 * time.Millisecond: "1.5s",
	} {
		if got := formatHorizon(h); got != want {
			t.Errorf("formatHorizon(%v) = %q, want %q", h, got, want)
		}
	}
}

func TestWindowedCounterRatesAndExpiry(t *testing.T) {
	s, clk := testWindowSet(time.Second, 5*time.Second, 20*time.Second)
	w := s.Counter("test_events_total", "")
	// 10 events per tick for 5 ticks; the horizon includes the current
	// partial tick, so the last add lands in it.
	for i := 0; i < 5; i++ {
		if i > 0 {
			clk.advance(time.Second)
		}
		w.Add(10)
	}
	if got := w.Value(); got != 50 {
		t.Fatalf("cumulative = %d, want 50 (write-through)", got)
	}
	if got := w.Total(5 * time.Second); got != 50 {
		t.Fatalf("Total(5s) = %d, want 50", got)
	}
	if got := w.Rate(5 * time.Second); got != 10 {
		t.Fatalf("Rate(5s) = %v, want 10/s", got)
	}
	// 10 more ticks of silence: the 5s window drains, the 20s one keeps
	// the old burst.
	clk.advance(10 * time.Second)
	if got := w.Total(5 * time.Second); got != 0 {
		t.Fatalf("Total(5s) after silence = %d, want 0", got)
	}
	if got := w.Total(20 * time.Second); got != 50 {
		t.Fatalf("Total(20s) after silence = %d, want 50", got)
	}
	if got := w.Value(); got != 50 {
		t.Fatalf("cumulative decayed to %d; windows must not touch the twin", got)
	}
}

func TestWindowedCounterRingWraparound(t *testing.T) {
	s, clk := testWindowSet(time.Second, 3*time.Second)
	w := s.Counter("wrap_total", "")
	// Many times around the ring (slots = 4): each pass must reset the
	// reused buckets, so the window never double-counts.
	for round := 0; round < 25; round++ {
		if round > 0 {
			clk.advance(time.Second)
		}
		w.Add(1)
	}
	if got := w.Total(3 * time.Second); got != 3 {
		t.Fatalf("Total(3s) after wraparound = %d, want 3", got)
	}
	if got := w.Value(); got != 25 {
		t.Fatalf("cumulative = %d, want 25", got)
	}
}

func TestWindowedCounterSeries(t *testing.T) {
	s, clk := testWindowSet(time.Second, 10*time.Second)
	w := s.Counter("series_total", "")
	w.Add(1)
	clk.advance(time.Second)
	w.Add(2)
	clk.advance(time.Second)
	// Current tick (empty) plus two filled ones; the gap tick is zero.
	got := w.Series(4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[0].N != 0 || got[1].N != 1 || got[2].N != 2 || got[3].N != 0 {
		t.Fatalf("series = %+v, want [0 1 2 0]", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Tick != got[i-1].Tick+1 {
			t.Fatalf("ticks not contiguous: %+v", got)
		}
	}
}

func TestWinBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20, 1 << 40, 1<<62 + 12345} {
		idx := winBucketIndex(v)
		if idx < prev {
			t.Fatalf("index not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= winNumBuckets {
			t.Fatalf("index out of range for %d: %d", v, idx)
		}
		if low := winBucketLow(idx); low > v {
			t.Fatalf("bucket low %d exceeds value %d", low, v)
		}
		// The bucket midpoint is within the scheme's relative error.
		if v >= winSubBuckets {
			mid := winBucketMid(idx)
			if diff := float64(mid-v) / float64(v); diff > 0.15 || diff < -0.15 {
				t.Fatalf("midpoint %d for %d: relative error %.2f", mid, v, diff)
			}
		}
	}
	if winBucketIndex(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

func TestWindowedHistogramQuantiles(t *testing.T) {
	s, clk := testWindowSet(time.Second, 10*time.Second)
	w := s.Histogram("lat_ns", "")
	// 100 observations spread 1..100ms: p50≈50ms, p99≈100ms.
	for i := 1; i <= 100; i++ {
		w.Observe(int64(i) * int64(time.Millisecond))
	}
	snap := w.Window(10 * time.Second)
	if snap.Count != 100 {
		t.Fatalf("count = %d, want 100", snap.Count)
	}
	if snap.Rate != 10 {
		t.Fatalf("rate = %v, want 10/s", snap.Rate)
	}
	check := func(name string, got, want int64) {
		if ratio := float64(got) / float64(want); ratio < 0.80 || ratio > 1.20 {
			t.Errorf("%s = %v, want within 20%% of %v", name, time.Duration(got), time.Duration(want))
		}
	}
	check("p50", snap.P50, int64(50*time.Millisecond))
	check("p95", snap.P95, int64(95*time.Millisecond))
	check("p99", snap.P99, int64(99*time.Millisecond))
	if mean := snap.Mean(); mean < float64(45*time.Millisecond) || mean > float64(56*time.Millisecond) {
		t.Errorf("mean = %v", time.Duration(int64(mean)))
	}
	// Cumulative twin saw everything too.
	if got := w.Cumulative().Snapshot().Count; got != 100 {
		t.Fatalf("cumulative count = %d, want 100", got)
	}
	// Observations age out of the window but not the twin.
	clk.advance(15 * time.Second)
	if snap := w.Window(10 * time.Second); snap.Count != 0 || snap.P99 != 0 {
		t.Fatalf("window after expiry = %+v, want empty", snap)
	}
	if got := w.Cumulative().Snapshot().Count; got != 100 {
		t.Fatalf("cumulative count decayed: %d", got)
	}
}

func TestWindowedHistogramSeries(t *testing.T) {
	s, clk := testWindowSet(time.Second, 10*time.Second)
	w := s.Histogram("series_ns", "")
	w.Observe(1000)
	w.Observe(2000)
	clk.advance(time.Second)
	w.Observe(5000)
	got := w.Series(3)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	if got[0].Count != 0 || got[1].Count != 2 || got[2].Count != 1 {
		t.Fatalf("series counts = %+v, want [0 2 1]", got)
	}
	if got[2].P99 < 4000 || got[2].P99 > 6000 {
		t.Fatalf("per-tick p99 = %d, want ≈5000", got[2].P99)
	}
}

func TestStaleWriterCannotRotateBackwards(t *testing.T) {
	s, clk := testWindowSet(time.Second, 3*time.Second)
	w := s.Counter("stale_total", "")
	w.Add(5)
	tick := s.nowTick()
	slot := int(tick % int64(w.ring.slots))
	// A writer with an old clock reading must not wipe the newer bucket.
	w.ring.rotate(slot, tick-4)
	if got := w.vals[slot].Load(); got != 5 {
		t.Fatalf("backwards rotation wiped the bucket: %d", got)
	}
	_ = clk
}

func TestSetNowNilRestoresWallClock(t *testing.T) {
	s, _ := testWindowSet(time.Second, 5*time.Second)
	s.SetNow(nil)
	w := s.Counter("wall_total", "")
	w.Inc()
	if got := w.Total(5 * time.Second); got != 1 {
		t.Fatalf("Total = %d under the wall clock, want 1", got)
	}
}

func TestDumpCursorDelta(t *testing.T) {
	s, clk := testWindowSet(time.Second, 10*time.Second)
	w := s.Counter("dump_total", "")
	h := s.Histogram("dump_ns", "")
	w.Add(3)
	h.Observe(100)
	clk.advance(2 * time.Second)
	w.Add(4)
	h.Observe(200)

	full := s.Dump(0, 10)
	if full.TickNS != int64(time.Second) || full.Cursor != full.NowTick {
		t.Fatalf("dump header: %+v", full)
	}
	if len(full.Horizons) != 1 || full.Horizons[0] != "10s" {
		t.Fatalf("horizons = %v", full.Horizons)
	}
	cs := full.Counters["dump_total"]
	if cs.Total != 7 || len(cs.Series) == 0 {
		t.Fatalf("counter dump = %+v", cs)
	}
	if cs.Rates["10s"] != 0.7 {
		t.Fatalf("rate = %v, want 0.7", cs.Rates["10s"])
	}
	hs := full.Histograms["dump_ns"]
	if hs.Count != 2 || hs.Windows["10s"].Count != 2 {
		t.Fatalf("histogram dump = %+v", hs)
	}

	// A delta dump from the full dump's cursor holds only newer ticks.
	clk.advance(time.Second)
	w.Add(5)
	delta := s.Dump(full.Cursor, 10)
	cs = delta.Counters["dump_total"]
	if len(cs.Series) != 1 || cs.Series[0].N != 5 || cs.Series[0].Tick != full.Cursor+1 {
		t.Fatalf("delta series = %+v, want one tick of 5 at cursor+1", cs.Series)
	}
	for _, p := range delta.Histograms["dump_ns"].Series {
		if p.Tick <= full.Cursor {
			t.Fatalf("histogram delta leaked tick %d <= cursor %d", p.Tick, full.Cursor)
		}
	}
	// Cursor at now: empty series, same totals.
	empty := s.Dump(delta.Cursor, 10)
	if got := empty.Counters["dump_total"]; len(got.Series) != 0 || got.Total != 12 {
		t.Fatalf("empty delta = %+v", got)
	}
}

func TestDumpIncludesGauges(t *testing.T) {
	reg := NewRegistry()
	s := NewWindowSet(reg, WindowConfig{Tick: time.Second, Horizons: []time.Duration{5 * time.Second}})
	reg.Gauge("g_height", "").Set(42)
	if got := s.Dump(0, 5).Gauges["g_height"]; got != 42 {
		t.Fatalf("gauge in dump = %d, want 42", got)
	}
}

func TestWindowedInstrumentsAreSingletons(t *testing.T) {
	s, _ := testWindowSet(time.Second, 5*time.Second)
	if s.Counter("same", "") != s.Counter("same", "") {
		t.Fatal("Counter not idempotent")
	}
	if s.Histogram("same_ns", "") != s.Histogram("same_ns", "") {
		t.Fatal("Histogram not idempotent")
	}
}

func TestWindowConcurrentObserve(t *testing.T) {
	s, clk := testWindowSet(10*time.Millisecond, 100*time.Millisecond)
	w := s.Counter("conc_total", "")
	h := s.Histogram("conc_ns", "")
	const goroutines, each = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				w.Inc()
				h.Observe(int64(i))
				if i%64 == 0 && g == 0 {
					clk.advance(10 * time.Millisecond) // rotate under load
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Value(); got != goroutines*each {
		t.Fatalf("cumulative = %d, want %d", got, goroutines*each)
	}
	if got := h.Cumulative().Snapshot().Count; got != goroutines*each {
		t.Fatalf("histogram cumulative = %d, want %d", got, goroutines*each)
	}
	// The window holds at most everything and merges without panicking.
	if got := w.Total(100 * time.Millisecond); got < 0 || got > goroutines*each {
		t.Fatalf("window total out of range: %d", got)
	}
	_ = h.Window(100 * time.Millisecond)
}
