// Package possible implements the paper's formal model of a blockchain
// database: the triple D = (R, I, T) of a current state, integrity
// constraints, and pending insert transactions; the can-append relation
// R →(T,I) R'; and the possible worlds Poss(D) it generates. It
// provides the PTIME possible-world recognition of Proposition 1, the
// getMaximal fixpoint of Section 6, and an exponential enumerator of
// all possible worlds used as ground truth in tests.
package possible

import (
	"context"
	"fmt"

	"blockchaindb/internal/constraint"
	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// DB is a blockchain database D = (R, I, T). Construct with New, which
// validates R |= I and normalizes the pending transactions against the
// state's schemas.
type DB struct {
	// State is the current state R: tuples already committed to the
	// chain.
	State *relation.State
	// Constraints is the integrity constraint set I.
	Constraints *constraint.Set
	// Pending is the transaction set T, in issue order.
	Pending []*relation.Transaction
}

// New assembles a blockchain database. It fails if the current state
// does not satisfy the constraints (the model requires R |= I) or if a
// pending transaction does not fit the schemas.
func New(state *relation.State, cons *constraint.Set, pending []*relation.Transaction) (*DB, error) {
	if err := cons.Check(state); err != nil {
		return nil, fmt.Errorf("possible: current state violates constraints: %w", err)
	}
	norm := make([]*relation.Transaction, len(pending))
	for i, tx := range pending {
		nt, err := state.NormalizeTransaction(tx)
		if err != nil {
			return nil, err
		}
		norm[i] = nt
	}
	return &DB{State: state, Constraints: cons, Pending: norm}, nil
}

// MustNew is New but panics on error.
func MustNew(state *relation.State, cons *constraint.Set, pending []*relation.Transaction) *DB {
	d, err := New(state, cons, pending)
	if err != nil {
		panic(err)
	}
	return d
}

// CanAppend reports whether world ∪ tx satisfies the constraints,
// i.e. whether world →(T,I) world ∪ tx. world must already satisfy
// them.
func (d *DB) CanAppend(world relation.View, tx *relation.Transaction) bool {
	return d.Constraints.CanAppend(world, tx)
}

// appendFixpoint is the one getMaximal fixpoint in the package:
// repeatedly append any remaining transaction whose addition preserves
// the constraints, until a round makes no progress or nothing remains.
// It mutates world in place, compacts remaining, appends to included,
// and returns both updated slices. GetMaximal, GetMaximalScratch, and
// WorldStack all run their rounds through it.
func (d *DB) appendFixpoint(world *relation.Overlay, remaining, included []int) ([]int, []int) {
	for {
		progressed := false
		next := remaining[:0]
		for _, ti := range remaining {
			tx := d.Pending[ti]
			if d.Constraints.CanAppend(world, tx) {
				world.Add(tx)
				included = append(included, ti)
				progressed = true
			} else {
				next = append(next, ti)
			}
		}
		remaining = next
		if !progressed || len(remaining) == 0 {
			return remaining, included
		}
	}
}

// GetMaximal computes the unique maximal possible world over the
// transaction subset given by indexes into Pending — the paper's
// getMaximal: repeatedly append any transaction whose addition
// preserves the constraints, until a fixpoint. It returns the world as
// an overlay over the state and the indexes actually included, in
// inclusion order. It is a thin allocating wrapper over
// GetMaximalScratch; hot loops should hold a scratch instead.
//
// For subsets that are pairwise fd-consistent (cliques of G^fd_T) the
// result is the maximal possible world of (R, I, T'); for arbitrary
// subsets it is still a valid possible world, just not necessarily one
// containing every member of the subset.
func (d *DB) GetMaximal(subset []int) (*relation.Overlay, []int) {
	var ms MaximalScratch
	world, included := d.GetMaximalScratch(&ms, subset)
	return world, append([]int(nil), included...)
}

// MaximalScratch holds the reusable allocations of GetMaximalScratch:
// the overlay (reset, not rebuilt, between worlds over the same state)
// and the fixpoint work lists. A scratch must not be shared between
// concurrent searches.
type MaximalScratch struct {
	world     *relation.Overlay
	remaining []int
	included  []int
}

// GetMaximalScratch is GetMaximal with caller-owned scratch space: the
// clique-search hot loop calls it thousands of times per check, and
// reusing the overlay and slices removes the per-world allocations.
// The returned overlay and slice alias the scratch — they are valid
// only until the next call with the same scratch; callers must copy
// the included indexes to retain them.
func (d *DB) GetMaximalScratch(ms *MaximalScratch, subset []int) (*relation.Overlay, []int) {
	if ms.world == nil || ms.world.Base() != d.State {
		ms.world = relation.NewOverlay(d.State)
	} else {
		ms.world.Reset()
	}
	world := ms.world
	remaining := append(ms.remaining[:0], subset...)
	included := ms.included[:0]
	ms.remaining, ms.included = d.appendFixpoint(world, remaining, included)
	return world, ms.included
}

// IsReachable implements Proposition 1 for a chosen transaction subset:
// it decides in PTIME whether R ∪ (exactly the transactions at the
// given indexes) is a possible world of D, i.e. whether some ordering
// of all of them appends successfully.
func (d *DB) IsReachable(subset []int) bool {
	world := relation.NewOverlay(d.State)
	remaining := append([]int(nil), subset...)
	for len(remaining) > 0 {
		progressed := false
		next := remaining[:0]
		for _, ti := range remaining {
			tx := d.Pending[ti]
			if d.Constraints.CanAppend(world, tx) {
				world.Add(tx)
				progressed = true
			} else {
				next = append(next, ti)
			}
		}
		remaining = next
		if !progressed {
			return false
		}
	}
	return true
}

// IsPossibleWorld decides in PTIME whether an arbitrary set of
// relations R' is a possible world of D (Proposition 1). R' must use
// the same schema names as the state.
//
// The algorithm: R' must contain R and satisfy I; collect the pending
// transactions fully contained in R'; greedily append any appendable
// one (monotone — the greedy closure is order-insensitive because a
// transaction appendable to a world inside R' stays appendable as the
// world grows within R'); accept iff the closure reproduces R' exactly.
func (d *DB) IsPossibleWorld(target *relation.State) bool {
	// R ⊆ R'.
	for _, name := range d.State.Names() {
		contained := d.State.Scan(name, func(t value.Tuple) bool {
			return target.Contains(name, t)
		})
		if !contained {
			return false
		}
	}
	// R' |= I.
	if d.Constraints.Check(target) != nil {
		return false
	}
	// Greedy closure over the contained transactions.
	world := relation.NewOverlay(d.State)
	var candidates []int
	for i, tx := range d.Pending {
		if tx.SubsetOf(target) {
			candidates = append(candidates, i)
		}
	}
	for {
		progressed := false
		next := candidates[:0]
		for _, ti := range candidates {
			if d.Constraints.CanAppend(world, d.Pending[ti]) {
				world.Add(d.Pending[ti])
				progressed = true
			} else {
				next = append(next, ti)
			}
		}
		candidates = next
		if !progressed {
			break
		}
	}
	// The closure must cover R' exactly; ⊆ holds by construction.
	for _, name := range target.Names() {
		covered := target.Scan(name, func(t value.Tuple) bool {
			return world.Contains(name, t)
		})
		if !covered {
			return false
		}
	}
	return true
}

// EnumerateWorlds enumerates every reachable transaction subset (each a
// possible world), calling yield with the included indexes (sorted) and
// the world view. Exponential in |Pending|; intended for tests, small
// interactive demos, and as the ground truth the DCSat algorithms are
// validated against. yield returning false stops the enumeration. The
// empty subset — the current state itself — is always yielded first.
func (d *DB) EnumerateWorlds(yield func(included []int, world *relation.Overlay) bool) {
	_ = d.EnumerateWorldsCtx(context.Background(), yield)
}

// EnumerateWorldsCtx is EnumerateWorlds with cooperative cancellation:
// the context is polled once per dequeued world, so even the
// exponential enumeration stops within one expansion step of a
// deadline or cancel. A cancelled enumeration returns the context's
// error; a complete one (or one stopped by yield) returns nil.
func (d *DB) EnumerateWorldsCtx(ctx context.Context, yield func(included []int, world *relation.Overlay) bool) error {
	type node struct {
		included []int
		world    *relation.Overlay
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	seen := map[string]bool{"": true}
	queue := []node{{nil, relation.NewOverlay(d.State)}}
	if !yield(nil, queue[0].world) {
		return nil
	}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur := queue[0]
		queue = queue[1:]
		for ti := range d.Pending {
			if containsInt(cur.included, ti) {
				continue
			}
			if !d.Constraints.CanAppend(cur.world, d.Pending[ti]) {
				continue
			}
			next := insertSorted(cur.included, ti)
			key := subsetKey(next)
			if seen[key] {
				continue
			}
			seen[key] = true
			w := relation.NewOverlay(d.State)
			for _, i := range next {
				w.Add(d.Pending[i])
			}
			if !yield(next, w) {
				return nil
			}
			queue = append(queue, node{next, w})
		}
	}
	return nil
}

// CountWorlds returns the number of reachable transaction subsets.
func (d *DB) CountWorlds() int {
	n := 0
	d.EnumerateWorlds(func([]int, *relation.Overlay) bool {
		n++
		return true
	})
	return n
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func insertSorted(xs []int, x int) []int {
	out := make([]int, 0, len(xs)+1)
	placed := false
	for _, v := range xs {
		if !placed && x < v {
			out = append(out, x)
			placed = true
		}
		out = append(out, v)
	}
	if !placed {
		out = append(out, x)
	}
	return out
}

func subsetKey(xs []int) string {
	b := make([]byte, 0, len(xs)*3)
	for _, v := range xs {
		b = append(b, byte(v>>16), byte(v>>8), byte(v), ',')
	}
	return string(b)
}
