package possible_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"blockchaindb/internal/constraint"
	"blockchaindb/internal/possible"
	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// TestPaperExample3 verifies the running example end to end: Poss(D)
// contains exactly the nine worlds listed in Example 3 of the paper —
// R, R∪T1, R∪T3, R∪T1∪T3, R∪T1∪T2, R∪T1∪T2∪T3, R∪T1∪T2∪T3∪T4, R∪T5,
// R∪T3∪T5. (Indexes are zero-based here: Ti is index i-1.)
func TestPaperExample3(t *testing.T) {
	d := paperDB()
	want := map[string]bool{
		"[]":        true,
		"[0]":       true,
		"[2]":       true,
		"[0 2]":     true,
		"[0 1]":     true,
		"[0 1 2]":   true,
		"[0 1 2 3]": true,
		"[4]":       true,
		"[2 4]":     true,
	}
	got := make(map[string]bool)
	d.EnumerateWorlds(func(included []int, _ *relation.Overlay) bool {
		got[fmt.Sprintf("%v", included)] = true
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Poss(D) = %v\nwant %v", keys(got), keys(want))
	}
	if n := d.CountWorlds(); n != 9 {
		t.Errorf("CountWorlds = %d, want 9", n)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestIsReachablePaperExample(t *testing.T) {
	d := paperDB()
	cases := []struct {
		subset []int
		want   bool
	}{
		{nil, true},
		{[]int{0}, true},           // T1
		{[]int{1}, false},          // T2 needs T1
		{[]int{0, 1}, true},        // T1, T2
		{[]int{3}, false},          // T4 needs T2 and T3
		{[]int{0, 1, 2, 3}, true},  // all of the T1 side
		{[]int{0, 4}, false},       // T1 and T5 double-spend
		{[]int{4}, true},           // T5 alone
		{[]int{2, 4}, true},        // T3 and T5
		{[]int{1, 2, 3, 4}, false}, // T4's chain requires T1, conflicting with T5
	}
	for _, c := range cases {
		if got := d.IsReachable(c.subset); got != c.want {
			t.Errorf("IsReachable(%v) = %v, want %v", c.subset, got, c.want)
		}
	}
}

func TestGetMaximalPaperExample6(t *testing.T) {
	d := paperDB()
	// Example 6: for the clique {T2,T3,T4,T5} the maximal world is
	// R ∪ {T3, T5}; for {T1,T2,T3,T4} it is R ∪ {T1,T2,T3,T4}.
	_, included := d.GetMaximal([]int{1, 2, 3, 4})
	sort.Ints(included)
	if !reflect.DeepEqual(included, []int{2, 4}) {
		t.Errorf("getMaximal({T2..T5}) included %v, want [2 4] (T3, T5)", included)
	}
	_, included2 := d.GetMaximal([]int{0, 1, 2, 3})
	sort.Ints(included2)
	if !reflect.DeepEqual(included2, []int{0, 1, 2, 3}) {
		t.Errorf("getMaximal({T1..T4}) included %v, want [0 1 2 3]", included2)
	}
}

func TestGetMaximalWorldContents(t *testing.T) {
	d := paperDB()
	world, _ := d.GetMaximal([]int{0, 1, 2, 3})
	// TxOut(7, 2, U8Pk, 1) comes from T4 and must be visible.
	u8 := value.NewTuple(value.Int(7), value.Int(2), value.Str("U8Pk"), value.Float(1))
	if !world.Contains("TxOut", u8) {
		t.Error("maximal world misses T4's output")
	}
	// T5's output must not be there.
	t5out := value.NewTuple(value.Int(8), value.Int(1), value.Str("U7Pk"), value.Float(4))
	if world.Contains("TxOut", t5out) {
		t.Error("maximal world contains excluded T5 output")
	}
}

func TestIsPossibleWorldStates(t *testing.T) {
	d := paperDB()
	// R itself.
	if !d.IsPossibleWorld(d.State) {
		t.Error("R itself must be a possible world")
	}
	// R ∪ T1 ∪ T2, materialized.
	w := d.State.Clone()
	if err := w.InsertTransaction(d.Pending[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.InsertTransaction(d.Pending[1]); err != nil {
		t.Fatal(err)
	}
	if !d.IsPossibleWorld(w) {
		t.Error("R ∪ T1 ∪ T2 must be a possible world")
	}
	// R ∪ T2 alone is not (T2 depends on T1).
	w2 := d.State.Clone()
	if err := w2.InsertTransaction(d.Pending[1]); err != nil {
		t.Fatal(err)
	}
	if d.IsPossibleWorld(w2) {
		t.Error("R ∪ T2 must not be a possible world")
	}
	// A state missing part of R is not a possible world.
	w3 := relation.NewState()
	w3.MustAddSchema(d.State.Schema("TxOut"))
	w3.MustAddSchema(d.State.Schema("TxIn"))
	if d.IsPossibleWorld(w3) {
		t.Error("state not containing R accepted")
	}
	// A state with alien tuples not from any transaction is not.
	w4 := d.State.Clone()
	w4.MustInsert("TxOut", value.NewTuple(value.Int(99), value.Int(1), value.Str("X"), value.Float(1)))
	if d.IsPossibleWorld(w4) {
		t.Error("state with alien tuples accepted")
	}
}

func TestNewValidation(t *testing.T) {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "k:int", "v:int"))
	cons := constraint.MustNewSet(s, []*constraint.FD{constraint.NewKey(s.Schema("R"), "k")}, nil)
	s.MustInsert("R", value.NewTuple(value.Int(1), value.Int(1)))
	s.MustInsert("R", value.NewTuple(value.Int(1), value.Int(2))) // violates key
	if _, err := possible.New(s, cons, nil); err == nil {
		t.Error("inconsistent current state accepted")
	}
	// Bad pending transaction (unknown relation).
	s2 := relation.NewState()
	s2.MustAddSchema(relation.NewSchema("R", "k:int", "v:int"))
	cons2 := constraint.MustNewSet(s2, nil, nil)
	bad := relation.NewTransaction("bad").Add("Missing", value.NewTuple(value.Int(1)))
	if _, err := possible.New(s2, cons2, []*relation.Transaction{bad}); err == nil {
		t.Error("transaction over unknown relation accepted")
	}
}

// randomDB builds a small random blockchain database over
// R(k:int, v:int) with key {k} and S(k:int) with S[k] ⊆ R[k].
func randomDB(r *rand.Rand) *possible.DB {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "k:int", "v:int"))
	s.MustAddSchema(relation.NewSchema("S", "k:int"))
	cons := constraint.MustNewSet(s,
		[]*constraint.FD{constraint.NewKey(s.Schema("R"), "k")},
		[]*constraint.IND{constraint.NewIND("S", []string{"k"}, "R", []string{"k"})})
	for k := 0; k < 2; k++ {
		if r.Intn(2) == 0 {
			s.MustInsert("R", value.NewTuple(value.Int(int64(k)), value.Int(int64(r.Intn(2)))))
		}
	}
	var pending []*relation.Transaction
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		tx := relation.NewTransaction(fmt.Sprintf("T%d", i+1))
		for j, m := 0, 1+r.Intn(2); j < m; j++ {
			if r.Intn(3) == 0 {
				tx.Add("S", value.NewTuple(value.Int(int64(r.Intn(4)))))
			} else {
				tx.Add("R", value.NewTuple(value.Int(int64(r.Intn(4))), value.Int(int64(r.Intn(2)))))
			}
		}
		if cons.FDSelfConsistent(tx) {
			pending = append(pending, tx)
		}
	}
	return possible.MustNew(s, cons, pending)
}

// TestIsReachableAgainstOrderSearch validates the PTIME greedy
// recognition of Proposition 1 against explicit search over all append
// orders on random databases.
func TestIsReachableAgainstOrderSearch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		// Random subset of pending.
		var subset []int
		for i := range d.Pending {
			if r.Intn(2) == 0 {
				subset = append(subset, i)
			}
		}
		got := d.IsReachable(subset)
		want := reachableBySearch(d, subset)
		if got != want {
			t.Logf("seed %d subset %v: greedy %v search %v", seed, subset, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// reachableBySearch tries every order of appending the subset.
func reachableBySearch(d *possible.DB, subset []int) bool {
	var rec func(world *relation.Overlay, remaining []int) bool
	rec = func(world *relation.Overlay, remaining []int) bool {
		if len(remaining) == 0 {
			return true
		}
		for i, ti := range remaining {
			if !d.Constraints.CanAppend(world, d.Pending[ti]) {
				continue
			}
			// Rebuild a fresh world to avoid sharing overlays between
			// branches.
			next := relation.NewOverlay(d.State)
			done := append([]int(nil), subset...)
			done = removeAll(done, remaining)
			for _, dd := range done {
				next.Add(d.Pending[dd])
			}
			next.Add(d.Pending[ti])
			rest := append(append([]int(nil), remaining[:i]...), remaining[i+1:]...)
			if rec(next, rest) {
				return true
			}
		}
		return false
	}
	return rec(relation.NewOverlay(d.State), subset)
}

func removeAll(xs, drop []int) []int {
	out := xs[:0]
	for _, x := range xs {
		found := false
		for _, d := range drop {
			if x == d {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}

// TestEnumerateWorldsAllReachable: every enumerated subset must be
// recognized by IsReachable and by IsPossibleWorld on its
// materialization, and every world must satisfy the constraints.
func TestEnumerateWorldsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDB(r)
		ok := true
		d.EnumerateWorlds(func(included []int, world *relation.Overlay) bool {
			if d.Constraints.Check(world) != nil {
				t.Logf("world %v violates constraints", included)
				ok = false
			}
			if !d.IsReachable(included) {
				t.Logf("world %v not recognized by IsReachable", included)
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateWorldsEarlyStop(t *testing.T) {
	d := paperDB()
	n := 0
	d.EnumerateWorlds(func([]int, *relation.Overlay) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "k:int"))
	cons := constraint.MustNewSet(s, nil, nil)
	bad := relation.NewTransaction("bad").Add("Missing", value.NewTuple(value.Int(1)))
	possible.MustNew(s, cons, []*relation.Transaction{bad})
}
