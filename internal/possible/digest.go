package possible

import (
	"crypto/sha256"
	"sort"

	"blockchaindb/internal/relation"
)

// Digest is a content-addressed identifier of a transaction: two
// transactions have the same digest exactly when they insert the same
// tuples into the same relations (up to the 128-bit truncation of
// SHA-256, whose collision probability is negligible at any realistic
// pending-set size). The transaction's name is deliberately excluded —
// the possible-worlds semantics depends only on tuple contents, so a
// re-gossiped transaction under a different label digests identically.
type Digest [16]byte

// TxDigest computes the content digest of a transaction. The encoding
// is canonical: "relation\x00tupleKey" lines, sorted, so neither the
// relation first-touch order nor the tuple insertion order matters.
// Digest transactions after normalization (State.NormalizeTransaction):
// normalization rewrites numeric kinds, and un-normalized duplicates of
// the same content would otherwise digest apart.
func TxDigest(tx *relation.Transaction) Digest {
	lines := make([]string, 0, tx.Size())
	for _, rel := range tx.Relations() {
		for _, t := range tx.Tuples(rel) {
			lines = append(lines, rel+"\x00"+t.Key())
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{0x01})
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}
