package possible_test

import (
	"blockchaindb/internal/fixture"
	"blockchaindb/internal/possible"
)

// paperDB returns the paper's running example (Figure 2) from the
// shared fixture package.
func paperDB() *possible.DB { return fixture.PaperDB() }
