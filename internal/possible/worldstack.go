package possible

import "blockchaindb/internal/relation"

// WorldStack maintains the getMaximal fixpoint incrementally along a
// path of the Bron–Kerbosch recursion: Rebase establishes the world of
// a component's universal members, Push extends it with one more
// transaction (running only the marginal fixpoint rounds), and Pop
// restores the previous world exactly via the overlay's undo log — at
// a cost proportional to the tuples the matching Push added, never to
// the world's size.
//
// The incremental discipline is sound for the clique search because a
// pushed set that is pairwise fd-consistent (universal members plus a
// clique prefix of G^fd_T) makes CanAppend monotone: an fd obstacle
// would require a conflicting pair inside the set, which clique edges
// exclude, so appendability is governed by inclusion-dependency
// references that only grow with the world. The greedy closure of a
// monotone step function has a unique fixpoint, so pushing the members
// one at a time lands on the same included set and world tuples as
// GetMaximalScratch over the whole subset at once — the property the
// incremental-vs-from-scratch oracle in internal/core pins. (The
// *inclusion order* may legitimately differ from the one-shot
// fixpoint's: a transaction deferred by the one-shot rounds can be
// absorbed immediately when pushed later.) For arbitrary push sets the
// stack still tracks exactly what a from-scratch replay of the same
// push sequence would produce.
//
// A WorldStack must not be shared between concurrent searches; each
// branch-parallel worker owns one.
type WorldStack struct {
	d         *DB
	world     *relation.Overlay
	included  []int
	remaining []int

	// Per-frame undo state, packed into shared backing arrays so a
	// Push/Pop pair allocates nothing after warm-up: the overlay mark
	// (MarkLen ints per frame) and a snapshot of the pre-push remaining
	// list (whose membership shrinks non-monotonically under the
	// fixpoint, so truncation alone cannot restore it).
	frames   []wsFrame
	marks    []int
	savedRem []int
}

type wsFrame struct {
	markOff     int
	includedLen int
	remOff      int
	remLen      int
}

// Rebase resets the stack onto the database with a fresh root frame:
// the fixpoint world over the given transaction subset (the clique
// search's universal members). The overlay is reset, not rebuilt, when
// the database is unchanged. It returns the root world and the
// included indexes; both alias the stack and are valid until the next
// stack operation.
func (ws *WorldStack) Rebase(d *DB, base []int) (*relation.Overlay, []int) {
	if ws.world == nil || ws.d == nil || ws.world.Base() != d.State {
		ws.world = relation.NewOverlay(d.State)
	} else {
		ws.world.Reset()
	}
	ws.d = d
	ws.frames = ws.frames[:0]
	ws.marks = ws.marks[:0]
	ws.savedRem = ws.savedRem[:0]
	ws.included = ws.included[:0]
	ws.remaining = append(ws.remaining[:0], base...)
	ws.remaining, ws.included = d.appendFixpoint(ws.world, ws.remaining, ws.included)
	return ws.world, ws.included
}

// Push extends the world with the transaction at index ti, running the
// fixpoint until no further transaction (ti or a previously deferred
// one it unblocks) can be appended. It returns the new world and
// included set, aliasing the stack. Every Push must eventually be
// matched by a Pop (or discarded wholesale by Rebase).
func (ws *WorldStack) Push(ti int) (*relation.Overlay, []int) {
	ws.frames = append(ws.frames, wsFrame{
		markOff:     len(ws.marks),
		includedLen: len(ws.included),
		remOff:      len(ws.savedRem),
		remLen:      len(ws.remaining),
	})
	ws.marks = ws.world.AppendMark(ws.marks)
	ws.savedRem = append(ws.savedRem, ws.remaining...)
	ws.remaining = append(ws.remaining, ti)
	ws.remaining, ws.included = ws.d.appendFixpoint(ws.world, ws.remaining, ws.included)
	return ws.world, ws.included
}

// Pop undoes the most recent Push exactly: world tuples truncated to
// the frame's overlay mark, included and remaining restored. Popping
// an empty stack (only the Rebase frame left) panics — it is a caller
// bug, mirroring an unbalanced Ascend.
func (ws *WorldStack) Pop() {
	n := len(ws.frames) - 1
	f := ws.frames[n]
	ws.frames = ws.frames[:n]
	ws.world.PopToMark(ws.marks[f.markOff:])
	ws.marks = ws.marks[:f.markOff]
	ws.included = ws.included[:f.includedLen]
	ws.remaining = append(ws.remaining[:0], ws.savedRem[f.remOff:f.remOff+f.remLen]...)
	ws.savedRem = ws.savedRem[:f.remOff]
}

// Depth returns the number of Pushes currently on the stack (the
// Rebase frame not counted) — the clique search's reuse depth.
func (ws *WorldStack) Depth() int { return len(ws.frames) }

// World returns the current world view, aliasing the stack.
func (ws *WorldStack) World() *relation.Overlay { return ws.world }

// Included returns the currently included transaction indexes in
// inclusion order, aliasing the stack.
func (ws *WorldStack) Included() []int { return ws.included }

// Remaining returns the pushed-but-not-yet-appendable indexes,
// aliasing the stack.
func (ws *WorldStack) Remaining() []int { return ws.remaining }
