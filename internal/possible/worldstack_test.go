package possible_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"blockchaindb/internal/fixture"
	"blockchaindb/internal/possible"
	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// getMaximalRef is the original allocating getMaximal fixpoint, kept
// verbatim as the oracle for the unified scratch path: fresh overlay,
// fresh slices, round-robin append until fixpoint.
func getMaximalRef(d *possible.DB, subset []int) (*relation.Overlay, []int) {
	world := relation.NewOverlay(d.State)
	remaining := append([]int(nil), subset...)
	var included []int
	for {
		progressed := false
		next := remaining[:0]
		for _, ti := range remaining {
			tx := d.Pending[ti]
			if d.Constraints.CanAppend(world, tx) {
				world.Add(tx)
				included = append(included, ti)
				progressed = true
			} else {
				next = append(next, ti)
			}
		}
		remaining = next
		if !progressed || len(remaining) == 0 {
			return world, included
		}
	}
}

// randomChainDB builds a small random Bitcoin-shaped database with
// double-spends (fd conflicts) and spend chains (ind dependencies), the
// same regime the clique search runs in.
func randomChainDB(r *rand.Rand) *possible.DB {
	s := fixture.BitcoinSchema()
	cons := fixture.BitcoinConstraints(s)
	nOuts := 2 + r.Intn(3)
	for i := 0; i < nOuts; i++ {
		s.MustInsert("TxOut", fixture.TxOut(1, int64(i+1), fmt.Sprintf("U%dPk", i%3), 1))
	}
	var pending []*relation.Transaction
	nextTx := int64(2)
	for i, n := 0, 2+r.Intn(7); i < n; i++ {
		tx := relation.NewTransaction(fmt.Sprintf("T%d", i+1))
		var ser int64
		var srcTx int64 = 1
		if r.Intn(2) == 0 && nextTx > 2 {
			srcTx = 2 + int64(r.Intn(int(nextTx-2))) // spend a pending output: ind chain
			ser = 1
		} else {
			ser = int64(r.Intn(nOuts) + 1) // spend a committed output: possible double spend
		}
		owner := fmt.Sprintf("U%dPk", (ser-1)%3)
		tx.Add("TxIn", fixture.TxIn(srcTx, ser, owner, 1, nextTx, owner+"Sig"))
		tx.Add("TxOut", fixture.TxOut(nextTx, 1, fmt.Sprintf("U%dPk", r.Intn(4)), 1))
		nextTx++
		pending = append(pending, tx)
	}
	return possible.MustNew(s, cons, pending)
}

// snapshot captures everything observable about a world stack: the
// world's tuples per relation, the included list (with order), and the
// remaining list.
func snapshot(world *relation.Overlay, included, remaining []int) string {
	var b []string
	for _, name := range world.Names() {
		var rows []string
		world.Scan(name, func(t value.Tuple) bool {
			rows = append(rows, fmt.Sprint(t))
			return true
		})
		sort.Strings(rows)
		b = append(b, fmt.Sprintf("%s:%v", name, rows))
	}
	return fmt.Sprintf("world=%v included=%v remaining=%v", b, included, remaining)
}

// TestGetMaximalAgainstReference: the unified GetMaximal /
// GetMaximalScratch path reproduces the original allocating fixpoint
// exactly — world tuples, included order — on random subsets of random
// databases, including non-clique subsets.
func TestGetMaximalAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := randomChainDB(r)
		var ms possible.MaximalScratch
		for trial := 0; trial < 4; trial++ {
			var subset []int
			for i := range d.Pending {
				if r.Intn(2) == 0 {
					subset = append(subset, i)
				}
			}
			refW, refInc := getMaximalRef(d, subset)
			w1, inc1 := d.GetMaximal(subset)
			w2, inc2 := d.GetMaximalScratch(&ms, subset)
			want := snapshot(refW, refInc, nil)
			if got := snapshot(w1, inc1, nil); got != want {
				t.Fatalf("seed %d: GetMaximal diverged\n got %s\nwant %s", seed, got, want)
			}
			if got := snapshot(w2, inc2, nil); got != want {
				t.Fatalf("seed %d: GetMaximalScratch diverged\n got %s\nwant %s", seed, got, want)
			}
		}
	}
}

// TestWorldStackReplayExact: a WorldStack driven through a random
// push/pop walk is indistinguishable — world tuples, included order,
// remaining set — from a fresh stack replaying the surviving pushes
// from scratch. This pins the undo log: Pop must restore *exactly* the
// pre-Push state, including index bookkeeping, or later probes read
// ghosts.
func TestWorldStackReplayExact(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := randomChainDB(r)
		base := []int{}
		if len(d.Pending) > 2 && r.Intn(2) == 0 {
			base = append(base, r.Intn(len(d.Pending)))
		}
		var ws possible.WorldStack
		ws.Rebase(d, base)
		var pushed []int // the logical stack mirrored outside
		for step := 0; step < 30; step++ {
			if ws.Depth() > 0 && r.Intn(3) == 0 {
				ws.Pop()
				pushed = pushed[:len(pushed)-1]
			} else {
				ti := r.Intn(len(d.Pending))
				ws.Push(ti)
				pushed = append(pushed, ti)
			}
			var ref possible.WorldStack
			ref.Rebase(d, base)
			for _, ti := range pushed {
				ref.Push(ti)
			}
			got := snapshot(ws.World(), ws.Included(), ws.Remaining())
			want := snapshot(ref.World(), ref.Included(), ref.Remaining())
			if got != want {
				t.Fatalf("seed %d step %d (pushed %v):\n got %s\nwant %s", seed, step, pushed, got, want)
			}
		}
	}
}

// TestWorldStackRebaseReuse: Rebase onto the same database reuses the
// overlay and fully clears prior state; onto a different database it
// rebuilds.
func TestWorldStackRebaseReuse(t *testing.T) {
	d := fixture.PaperDB()
	var ws possible.WorldStack
	w1, _ := ws.Rebase(d, nil)
	ws.Push(0)
	ws.Push(1)
	w2, inc := ws.Rebase(d, nil)
	if w1 != w2 {
		t.Error("Rebase onto the same database rebuilt the overlay")
	}
	if ws.Depth() != 0 || len(inc) != 0 || w2.ExtraSize() != 0 {
		t.Fatalf("Rebase left residue: depth=%d included=%v extra=%d", ws.Depth(), inc, w2.ExtraSize())
	}
	d2 := fixture.PaperDB()
	w3, _ := ws.Rebase(d2, nil)
	if w3 == w2 {
		t.Error("Rebase onto a different database reused the old overlay")
	}
}
