package query

import (
	"fmt"
)

// Validate checks that the query is well-formed and safe: at least one
// positive atom; every variable appearing in a negated atom, a
// comparison, or the aggregate head also appears in a positive atom;
// and aggregate arities are correct (sum, max, min take exactly one
// variable, cntd at least one).
func (q *Query) Validate() error {
	pos := q.Positives()
	if len(pos) == 0 {
		return fmt.Errorf("query: no positive relational atoms")
	}
	bound := make(map[string]bool)
	for _, a := range pos {
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, a := range q.Negatives() {
		for _, t := range a.Args {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("query: unsafe variable %q in negated atom %v", t.Var, a)
			}
		}
	}
	for _, c := range q.Comparisons {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("query: unsafe variable %q in comparison %v", t.Var, c)
			}
		}
	}
	for _, v := range q.HeadVars {
		if !bound[v] {
			return fmt.Errorf("query: unsafe head variable %q", v)
		}
	}
	if q.Agg != nil {
		if len(q.HeadVars) > 0 {
			return fmt.Errorf("query: a query cannot have both head variables and an aggregate")
		}
		for _, v := range q.Agg.Vars {
			if !bound[v] {
				return fmt.Errorf("query: unsafe aggregate variable %q", v)
			}
		}
		switch q.Agg.Func {
		case AggSum, AggMax, AggMin:
			if len(q.Agg.Vars) != 1 {
				return fmt.Errorf("query: %s takes exactly one variable", q.Agg.Func)
			}
		case AggCntd:
			if len(q.Agg.Vars) == 0 {
				return fmt.Errorf("query: cntd takes at least one variable")
			}
		case AggCount:
			// count() over empty tuples is allowed.
		default:
			return fmt.Errorf("query: unknown aggregate %q", q.Agg.Func)
		}
	}
	return nil
}

// IsPositive reports whether the query has no negated atoms (the Q+
// classes of the paper).
func (q *Query) IsPositive() bool { return len(q.Negatives()) == 0 }

// IsAggregate reports whether the query has an aggregate head.
func (q *Query) IsAggregate() bool { return q.Agg != nil }

// IsMonotonic reports whether the query is monotonic: whenever it holds
// on R it holds on every superset of R. Conjunctive queries are
// monotonic iff positive (comparisons do not hurt). Aggregate queries
// are monotonic when positive and the aggregate value cannot decrease
// as the relation grows and the comparison is > or >=; this holds for
// count, cntd, and max unconditionally, and for sum under the
// assumption that aggregated values are non-negative (true for
// quantities such as bitcoin amounts — callers aggregating possibly
// negative values must not rely on monotonicity).
//
// NaiveDCSat and OptDCSat are complete only for monotonic denial
// constraints, which is why this predicate gates them.
func (q *Query) IsMonotonic() bool {
	if !q.IsPositive() {
		return false
	}
	if q.Agg == nil {
		return true
	}
	if q.Agg.Op != OpGt && q.Agg.Op != OpGe {
		return false
	}
	switch q.Agg.Func {
	case AggCount, AggCntd, AggSum, AggMax:
		return true
	default:
		return false
	}
}

// termKey canonicalizes a term for graph-node identity: variables by
// name, constants by value encoding (identical constants in different
// atoms are the same node, which only merges components — safe).
func termKey(t Term) string {
	if t.IsVar() {
		return "v\x00" + t.Var
	}
	return "c\x00" + t.Const.String()
}

// IsConnected reports whether the query is connected in the paper's
// sense: it is conjunctive (no aggregate head) and the Gaifman graph —
// nodes are the terms of the relational atoms, edges join terms
// co-occurring in an atom — has a single connected component.
// Comparisons do not contribute edges (the paper's example
// "q() ← R(x,y), S(w,v), y < v" is not connected).
func (q *Query) IsConnected() bool {
	if q.Agg != nil {
		return false
	}
	if len(q.Atoms) == 0 {
		return false
	}
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, a := range q.Atoms {
		var firstKey string
		for _, t := range a.Args {
			k := termKey(t)
			if _, ok := parent[k]; !ok {
				parent[k] = k
			}
			if firstKey == "" {
				firstKey = k
			} else {
				union(firstKey, k)
			}
		}
	}
	roots := make(map[string]bool)
	for k := range parent {
		roots[find(k)] = true
	}
	// A query whose atoms are all zero-ary is vacuously connected only
	// if there is one atom.
	if len(parent) == 0 {
		return len(q.Atoms) == 1
	}
	return len(roots) == 1
}

// eqClasses returns a class identifier per term, merging variables (and
// constants) related by '=' comparisons. Terms not mentioned in any
// equality comparison are their own class.
func (q *Query) eqClasses() map[string]string {
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(k string) {
		if _, ok := parent[k]; !ok {
			parent[k] = k
		}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(termKey(t))
		}
	}
	for _, c := range q.Comparisons {
		if c.Op != OpEq {
			continue
		}
		lk, rk := termKey(c.Left), termKey(c.Right)
		add(lk)
		add(rk)
		ra, rb := find(lk), find(rk)
		if ra != rb {
			parent[ra] = rb
		}
	}
	out := make(map[string]string, len(parent))
	for k := range parent {
		out[k] = find(k)
	}
	return out
}
