package query

import (
	"testing"

	"blockchaindb/internal/value"
)

func TestIsConnected(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		// Paper's examples.
		{"q() :- R(x, y), S(w, v), T(x, v)", true},
		{"q() :- R(x, y), S(w, v), y < v", false},
		{"q() :- R(x, y)", true},
		{"q() :- R(x, y), S(y, z)", true},
		{"q() :- R(x, y), S(w, v)", false},
		// Connection through a shared constant.
		{"q() :- R(x, 'k'), S('k', y)", true},
		// Aggregates are never connected.
		{"q(count()) > 1 :- R(x, y), S(y, z)", false},
	}
	for _, c := range cases {
		q := MustParse(c.src)
		if got := q.IsConnected(); got != c.want {
			t.Errorf("IsConnected(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIsMonotonic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"q() :- R(x, y)", true},
		{"q() :- R(x, y), x < y", true}, // comparisons keep monotonicity
		{"q() :- R(x, y), !S(x)", false},
		{"q(count()) > 3 :- R(x, y)", true},
		{"q(cntd(x)) >= 3 :- R(x, y)", true},
		{"q(sum(x)) > 3 :- R(x, y)", true},
		{"q(max(x)) > 3 :- R(x, y)", true},
		{"q(min(x)) > 3 :- R(x, y)", false}, // min decreases as worlds grow
		{"q(count()) < 3 :- R(x, y)", false},
		{"q(sum(x)) = 3 :- R(x, y)", false},
		{"q(count()) > 3 :- R(x, y), !S(x)", false},
	}
	for _, c := range cases {
		q := MustParse(c.src)
		if got := q.IsMonotonic(); got != c.want {
			t.Errorf("IsMonotonic(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEqualityConstraintsPaperExample7(t *testing.T) {
	// Example 7: q() ← R(w,x,u), S(x,w,z), T(y,x) over R(A1,A2,A3),
	// S(B1,B2,B3), T(C1,C2) implies R[A1,A2]=S[B2,B1], R[A2]=T[C2],
	// S[B1]=T[C2].
	q := MustParse("q() :- R(w, x, u), S(x, w, z), T(y, x)")
	thetas := q.EqualityConstraints()
	if len(thetas) != 3 {
		t.Fatalf("got %d constraints: %v", len(thetas), thetas)
	}
	want := map[string]bool{
		"R[0,1] = S[1,0]": true, // w at R0↔S1, x at R1↔S0
		"R[1] = T[1]":     true,
		"S[0] = T[1]":     true,
	}
	for _, th := range thetas {
		if !want[th.String()] {
			t.Errorf("unexpected constraint %v", th)
		}
		delete(want, th.String())
	}
	for w := range want {
		t.Errorf("missing constraint %v", w)
	}
}

func TestEqualityConstraintsViaComparison(t *testing.T) {
	// x = y links R's first column with S's first column.
	q := MustParse("q() :- R(x, a), S(y, b), x = y")
	thetas := q.EqualityConstraints()
	if len(thetas) != 1 || thetas[0].String() != "R[0] = S[0]" {
		t.Fatalf("thetas = %v", thetas)
	}
	// Non-equality comparisons do not link.
	q2 := MustParse("q() :- R(x, a), S(y, b), x < y")
	if len(q2.EqualityConstraints()) != 0 {
		t.Errorf("x < y should not imply an equality constraint")
	}
}

func TestEqualityConstraintsSharedConstant(t *testing.T) {
	q := MustParse("q() :- R(x, 'k'), S('k', y)")
	thetas := q.EqualityConstraints()
	if len(thetas) != 1 || thetas[0].String() != "R[1] = S[0]" {
		t.Fatalf("thetas = %v", thetas)
	}
}

func TestEqualityConstraintsNoLink(t *testing.T) {
	q := MustParse("q() :- R(x, y), S(w, v)")
	if got := q.EqualityConstraints(); len(got) != 0 {
		t.Errorf("unrelated atoms produced constraints: %v", got)
	}
}

func TestEqualityConstraintsSameRelation(t *testing.T) {
	// Self-join: the paper's path queries join TxOut with TxIn on ntx.
	q := MustParse("q() :- TxOut(n1, s1, p, a), TxOut(n1, s2, p2, a2)")
	thetas := q.EqualityConstraints()
	if len(thetas) != 1 {
		t.Fatalf("thetas = %v", thetas)
	}
	if thetas[0].Rel != "TxOut" || thetas[0].RefRel != "TxOut" {
		t.Errorf("self-join constraint: %v", thetas[0])
	}
}

func TestAtomConstants(t *testing.T) {
	q := MustParse("q() :- TxOut(t, s, 'U8Pk', a)")
	cols, consts := AtomConstants(q.Atoms[0])
	if len(cols) != 1 || cols[0] != 2 {
		t.Fatalf("cols = %v", cols)
	}
	if !consts.Equal(value.NewTuple(value.Str("U8Pk"))) {
		t.Errorf("consts = %v", consts)
	}
	// No constants.
	cols2, consts2 := AtomConstants(MustParse("q() :- R(x, y)").Atoms[0])
	if len(cols2) != 0 || len(consts2) != 0 {
		t.Errorf("no-constant atom: cols=%v consts=%v", cols2, consts2)
	}
}

func TestValidateDirect(t *testing.T) {
	// Construct ASTs directly to cover Validate paths the parser
	// cannot reach.
	q := &Query{Atoms: []Atom{{Rel: "R", Args: []Term{V("x")}}},
		Agg: &AggHead{Func: AggFunc("median"), Vars: []string{"x"}, Op: OpGt, Bound: value.Int(1)}}
	if err := q.Validate(); err == nil {
		t.Error("unknown aggregate function accepted")
	}
	empty := &Query{}
	if err := empty.Validate(); err == nil {
		t.Error("query with no positive atoms accepted")
	}
}

func TestAtomPairs(t *testing.T) {
	// Example 7's pairs, at atom granularity.
	q := MustParse("q() :- R(w, x, u), S(x, w, z), T(y, x)")
	pairs := q.AtomPairs()
	if len(pairs) != 3 {
		t.Fatalf("pairs = %+v", pairs)
	}
	// (R,S): w at R0<->S1, x at R1<->S0.
	if pairs[0].I != 0 || pairs[0].J != 1 ||
		len(pairs[0].Cols) != 2 || pairs[0].Cols[0] != 0 || pairs[0].RefCols[0] != 1 {
		t.Errorf("pair R-S: %+v", pairs[0])
	}
	// Unlike EqualityConstraints, identical shapes are NOT deduplicated.
	q2 := MustParse("q() :- R(x, a), R(x, b), R(x, c)")
	if got := len(q2.AtomPairs()); got != 3 {
		t.Errorf("triangle pairs = %d, want 3", got)
	}
	if got := len(q2.EqualityConstraints()); got != 1 {
		t.Errorf("deduped constraints = %d, want 1", got)
	}
	// No pairs for unrelated atoms.
	if got := MustParse("q() :- R(x, y), S(w, v)").AtomPairs(); len(got) != 0 {
		t.Errorf("unrelated pairs = %+v", got)
	}
}
