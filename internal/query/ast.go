// Package query implements the denial-constraint language of the
// paper: Boolean conjunctive queries with negated atoms and
// comparisons, plus aggregate queries [q(α(x̄)) ← body] θ c for
// α ∈ {count, cntd, sum, max, min}. It provides a text parser, static
// analysis (safety, positivity, monotonicity, Gaifman connectivity,
// equality-constraint extraction), and an index-backed evaluator over
// relation views, with a naive reference evaluator for testing.
package query

import (
	"fmt"
	"strings"

	"blockchaindb/internal/value"
)

// Term is a variable or a constant appearing in an atom or comparison.
type Term struct {
	// Var is the variable name; empty when the term is a constant.
	Var string
	// Const is the constant value; meaningful only when Var == "".
	Const value.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v value.Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Atom is a (possibly negated) relational atom Rel(args...).
type Atom struct {
	Rel     string
	Args    []Term
	Negated bool
}

// String renders the atom.
func (a Atom) String() string {
	var b strings.Builder
	if a.Negated {
		b.WriteByte('!')
	}
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// The comparison operators. The paper uses {=, <, >, ≠} in bodies and
// {=, <, >} on aggregate heads; ≤ and ≥ are supported as conveniences.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Eval applies the operator to a three-way comparison result.
func (op CmpOp) Eval(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// Comparison is a body condition "Left op Right".
type Comparison struct {
	Left  Term
	Op    CmpOp
	Right Term
}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// AggFunc names an aggregate function.
type AggFunc string

// The aggregate functions of the paper (min is the dual of max).
const (
	AggCount AggFunc = "count"
	AggCntd  AggFunc = "cntd" // count distinct
	AggSum   AggFunc = "sum"
	AggMax   AggFunc = "max"
	AggMin   AggFunc = "min"
)

// AggHead is the head of an aggregate query: α(x̄) θ c. For count, Vars
// may be empty (count of satisfying assignments). For sum, max, and
// min exactly one variable is required.
type AggHead struct {
	Func  AggFunc
	Vars  []string
	Op    CmpOp
	Bound value.Value
}

// String renders the head condition, e.g. "sum(a) > 5".
func (h AggHead) String() string {
	return fmt.Sprintf("%s(%s) %s %s", h.Func, strings.Join(h.Vars, ", "), h.Op, h.Bound)
}

// Query is a denial constraint: a Boolean conjunctive or aggregate
// query that the user desires to remain unsatisfied in every possible
// world.
type Query struct {
	// Name is the head predicate name (informational).
	Name string
	// HeadVars are the head's distinguished variables; empty for
	// Boolean queries. Non-Boolean queries support the certain/possible
	// answer semantics of the paper's Section 5 rather than denial
	// constraint checking.
	HeadVars []string
	// Atoms are the relational atoms, positive and negated.
	Atoms []Atom
	// Comparisons are the body comparison conditions.
	Comparisons []Comparison
	// Agg is non-nil for aggregate queries.
	Agg *AggHead
}

// IsBoolean reports whether the query has no head variables (denial
// constraints are Boolean).
func (q *Query) IsBoolean() bool { return len(q.HeadVars) == 0 }

// Positives returns the positive relational atoms in body order.
func (q *Query) Positives() []Atom {
	var out []Atom
	for _, a := range q.Atoms {
		if !a.Negated {
			out = append(out, a)
		}
	}
	return out
}

// Negatives returns the negated relational atoms in body order.
func (q *Query) Negatives() []Atom {
	var out []Atom
	for _, a := range q.Atoms {
		if a.Negated {
			out = append(out, a)
		}
	}
	return out
}

// Vars returns the distinct variables of the query in first-occurrence
// order (relational atoms first, then comparisons).
func (q *Query) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, c := range q.Comparisons {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// String renders the query in the parser's input syntax.
func (q *Query) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	if q.Agg != nil {
		fmt.Fprintf(&b, "%s(%s)", q.Agg.Func, strings.Join(q.Agg.Vars, ", "))
	} else {
		b.WriteString(strings.Join(q.HeadVars, ", "))
	}
	b.WriteByte(')')
	if q.Agg != nil {
		fmt.Fprintf(&b, " %s %s", q.Agg.Op, q.Agg.Bound)
	}
	b.WriteString(" :- ")
	first := true
	for _, a := range q.Atoms {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(a.String())
	}
	for _, c := range q.Comparisons {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(c.String())
	}
	return b.String()
}
