package query

import (
	"fmt"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// This file implements delta re-evaluation for the incremental world
// maintenance in internal/core: when a world grows monotonically (the
// clique search pushes one more transaction and its fixpoint closure),
// a positive non-aggregate query that was unsatisfied on the old world
// is satisfied on the new one iff some assignment uses at least one of
// the delta tuples. EvalDelta decomposes that condition as an OR over
// plan steps — for each step d it runs the plan with step d windowed to
// the delta, steps before d windowed below the delta floor, and steps
// after d unwindowed — so every candidate assignment is enumerated from
// a delta tuple at its first delta position and none is enumerated
// twice.

// Window modes for one plan step during a delta run. winFull is the
// zero value so plain Eval runs need no window setup at all.
const (
	winFull  uint8 = iota // probe the whole view
	winBelow              // probe base + extra tuples with position < floor
	winFrom               // probe only extra tuples with position >= floor
)

// DeltaView is the view contract EvalDelta needs: the plain View probes
// plus position-windowed variants that split each relation's overlay
// extras at a floor captured before the delta was applied.
// *relation.Overlay is the canonical implementation; its windows are
// documented in internal/relation/window.go.
type DeltaView interface {
	relation.View
	// ExtraCount returns the number of overlay-extra tuples currently in
	// the relation; capturing it before a mutation yields the floor the
	// windowed probes split at.
	ExtraCount(rel string) int
	ScanBelow(rel string, floor int, f func(value.Tuple) bool) bool
	ScanFrom(rel string, floor int, f func(value.Tuple) bool) bool
	LookupKeyBelow(rel string, cols []int, projKey []byte, floor int, f func(value.Tuple) bool) bool
	LookupKeyFrom(rel string, cols []int, projKey []byte, floor int, f func(value.Tuple) bool) bool
}

var _ DeltaView = (*relation.Overlay)(nil)

// EvalDelta reports whether the plan is satisfied on the view given
// that it was NOT satisfied on the same view as it stood at the floors:
// floors[i] is the ExtraCount of plan.RelNames()[i] captured before the
// delta tuples were added. It only ever enumerates assignments touching
// the delta, so its cost is proportional to the delta's matches, not
// the world's.
//
// Soundness requires the caller to guarantee (a) the query is positive
// and non-aggregate (SupportsDelta), so satisfaction is monotone in the
// view, and (b) the pre-delta view was hit-free — otherwise the old
// assignment is simply not found and a false negative results. Callers
// that cannot guarantee (b) must fall back to Eval.
func (p *Plan) EvalDelta(v DeltaView, sc *Scratch, floors []int) (bool, error) {
	if !p.deltaOK {
		return false, fmt.Errorf("query: EvalDelta on a plan with aggregates or negation")
	}
	if len(floors) != len(p.relNames) {
		return false, fmt.Errorf("query: EvalDelta got %d floors for %d relations", len(floors), len(p.relNames))
	}
	n := len(p.steps)
	if cap(sc.winModes) >= n {
		sc.winModes = sc.winModes[:n]
		sc.winFloors = sc.winFloors[:n]
	} else {
		sc.winModes = make([]uint8, n)
		sc.winFloors = make([]int, n)
	}
	found := false
	sc.prepare(p, v, false, func() bool {
		found = true
		return false
	})
	sc.dv = v
	// OR over the position of the first delta tuple in the assignment:
	// steps before d see the pre-delta overlay (base plus extras below
	// the floor), step d sees only the delta, steps after d see
	// everything. A step whose relation gained no extras cannot host the
	// first delta tuple and is skipped outright.
	for d := 0; d < n && !found; d++ {
		ri := p.stepRelIdx[d]
		if v.ExtraCount(p.relNames[ri]) == floors[ri] {
			continue
		}
		for i := 0; i < n; i++ {
			rj := p.stepRelIdx[i]
			switch {
			case i < d:
				sc.winModes[i] = winBelow
				sc.winFloors[i] = floors[rj]
			case i == d:
				sc.winModes[i] = winFrom
				sc.winFloors[i] = floors[rj]
			default:
				sc.winModes[i] = winFull
			}
		}
		sc.run()
	}
	sc.finish()
	return found, nil
}
