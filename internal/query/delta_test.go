package query

import (
	"math/rand"
	"testing"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// randomPositiveQuery derives a delta-eligible query from the package's
// random generator: aggregates and negated atoms are stripped, which is
// exactly the SupportsDelta fragment.
func randomPositiveQuery(r *rand.Rand) *Query {
	q := randomQuery(r)
	q.Agg = nil
	atoms := q.Atoms[:0]
	for _, a := range q.Atoms {
		if !a.Negated {
			atoms = append(atoms, a)
		}
	}
	q.Atoms = atoms
	if err := q.Validate(); err != nil {
		return MustParse("q() :- R(x, y)")
	}
	return q
}

// randomTx builds one random transaction over R/S, the delta unit.
func randomTx(r *rand.Rand) *relation.Transaction {
	tx := relation.NewTransaction("T")
	for j, n := 0, 1+r.Intn(3); j < n; j++ {
		tx.Add("R", value.NewTuple(value.Int(int64(r.Intn(3))), value.Int(int64(r.Intn(3)))))
	}
	if r.Intn(2) == 0 {
		tx.Add("S", value.NewTuple(value.Int(int64(r.Intn(3)))))
	}
	return tx
}

// TestEvalDeltaAgainstFull is the delta-evaluation property test: grow
// a random overlay in stages and at each stage capture the floors, add
// the delta, and compare EvalDelta against a full Eval. Two properties
// are pinned:
//
//  1. Soundness, unconditionally: EvalDelta true implies Eval true (its
//     windows only ever see subsets of the view).
//  2. Completeness, under the documented precondition: when the
//     pre-delta view was hit-free, EvalDelta equals Eval exactly.
func TestEvalDeltaAgainstFull(t *testing.T) {
	for seed := int64(0); seed < 600; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		q := randomPositiveQuery(r)
		o := relation.NewOverlay(s)
		for i, n := 0, r.Intn(2); i < n; i++ {
			o.Add(randomTx(r))
		}
		p, err := Compile(q, o)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if !p.SupportsDelta() {
			t.Fatalf("seed %d: positive non-aggregate query rejected by SupportsDelta: %s", seed, q)
		}
		sc := NewScratch()
		for stage := 0; stage < 3; stage++ {
			preHit, err := p.Eval(o, sc)
			if err != nil {
				t.Fatalf("seed %d: eval: %v", seed, err)
			}
			floors := make([]int, len(p.RelNames()))
			for i, rel := range p.RelNames() {
				floors[i] = o.ExtraCount(rel)
			}
			for i, n := 0, r.Intn(3); i < n; i++ {
				o.Add(randomTx(r))
			}
			got, err := p.EvalDelta(o, sc, floors)
			if err != nil {
				t.Fatalf("seed %d: EvalDelta: %v", seed, err)
			}
			want, err := p.Eval(o, sc)
			if err != nil {
				t.Fatalf("seed %d: eval: %v", seed, err)
			}
			if got && !want {
				t.Fatalf("seed %d stage %d: EvalDelta=true but Eval=false on %s", seed, stage, q)
			}
			if !preHit && got != want {
				t.Fatalf("seed %d stage %d: pre-delta hit-free, EvalDelta=%v Eval=%v on %s", seed, stage, got, want, q)
			}
		}
	}
}

// TestEvalDeltaInterleavesPlainEval: a scratch alternating between
// EvalDelta and plain Eval must not leak window state into the plain
// runs (sc.dv is cleared by finish).
func TestEvalDeltaInterleavesPlainEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := randomState(r)
	q := MustParse("q() :- R(x, y), S(y)")
	o := relation.NewOverlay(s)
	p, err := Compile(q, o)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for i := 0; i < 20; i++ {
		floors := make([]int, len(p.RelNames()))
		for j, rel := range p.RelNames() {
			floors[j] = o.ExtraCount(rel)
		}
		o.Add(randomTx(r))
		if _, err := p.EvalDelta(o, sc, floors); err != nil {
			t.Fatal(err)
		}
		got, err := p.Eval(o, sc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EvalReference(q, o)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iteration %d: plain Eval diverged after EvalDelta: got %v want %v", i, got, want)
		}
	}
}

// TestEvalDeltaRejectsUnsupported: aggregate and negated queries must
// be refused, and a floors slice of the wrong shape is an error.
func TestEvalDeltaRejectsUnsupported(t *testing.T) {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "a:int", "b:int"))
	s.MustAddSchema(relation.NewSchema("S", "b:int"))
	o := relation.NewOverlay(s)
	sc := NewScratch()
	for _, src := range []string{
		"q() :- R(x, y), not S(y)",
		"q(count()) > 1 :- R(x, y)",
	} {
		q := MustParse(src)
		p, err := Compile(q, o)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if p.SupportsDelta() {
			t.Errorf("%s: SupportsDelta = true", src)
		}
		if _, err := p.EvalDelta(o, sc, make([]int, len(p.RelNames()))); err == nil {
			t.Errorf("%s: EvalDelta accepted an unsupported plan", src)
		}
	}
	p, err := Compile(MustParse("q() :- R(x, y)"), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EvalDelta(o, sc, make([]int, 5)); err == nil {
		t.Error("EvalDelta accepted a mis-shaped floors slice")
	}
}
