package query

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// This file is the compiled engine's differential harness: the
// slot-based compiled evaluator (plan.go), the interpreted evaluator it
// replaced (interp.go), and the brute-force reference (reference.go)
// must agree on every query and view — including overlays, negation,
// comparisons, aggregates, skip-negation mode, and the fuzz corpus.

// randomOverlay layers 0–2 random transactions over the state,
// exercising the base-then-extra probe order the compiled engine's
// per-depth key buffers were designed around.
func randomOverlay(r *rand.Rand, s *relation.State) *relation.Overlay {
	txs := make([]*relation.Transaction, r.Intn(3))
	for i := range txs {
		tx := relation.NewTransaction("T")
		for j, n := 0, 1+r.Intn(3); j < n; j++ {
			tx.Add("R", value.NewTuple(value.Int(int64(r.Intn(3))), value.Int(int64(r.Intn(3)))))
		}
		if r.Intn(2) == 0 {
			tx.Add("S", value.NewTuple(value.Int(int64(r.Intn(3)))))
		}
		txs[i] = tx
	}
	return relation.NewOverlay(s, txs...)
}

// TestCompiledAgainstInterpreted is the engine-replacement property
// test: on random databases, random overlays, and random queries, the
// compiled plan, the interpreted evaluator, and the naive reference all
// return the same verdict.
func TestCompiledAgainstInterpreted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		q := randomQuery(r)
		views := []relation.View{s, randomOverlay(r, s)}
		for _, v := range views {
			compiled, err1 := Eval(q, v)
			interp, err2 := EvalInterpreted(q, v)
			ref, err3 := EvalReference(q, v)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("eval errors: %v / %v / %v on %s", err1, err2, err3, q)
			}
			if compiled != interp || compiled != ref {
				t.Logf("query: %s", q)
				t.Logf("compiled=%v interpreted=%v reference=%v", compiled, interp, ref)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// bindingKey renders a variable assignment canonically (sorted by
// variable name) so compiled and interpreted assignment streams can be
// compared as multisets regardless of enumeration order.
func bindingKey(vars []string, get func(string) (value.Value, bool)) string {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, name := range sorted {
		val, _ := get(name)
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val.String())
		b.WriteByte(';')
	}
	return b.String()
}

// TestAssignmentsCompiledAgainstInterpreted checks the assignment
// enumeration both with and without negation checking (the PTIME
// solvers rely on the skip-negation mode) yields identical binding
// multisets from both engines.
func TestAssignmentsCompiledAgainstInterpreted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		q := randomQuery(r)
		for _, checkNeg := range []bool{true, false} {
			var compiled, interp []string
			err1 := Assignments(q, s, checkNeg, func(b *Binding) bool {
				compiled = append(compiled, bindingKey(b.Vars(), b.Value))
				return true
			})
			err2 := assignmentsInterpreted(q, s, checkNeg, func(m map[string]value.Value) bool {
				vars := make([]string, 0, len(m))
				for name := range m {
					vars = append(vars, name)
				}
				interp = append(interp, bindingKey(vars, func(name string) (value.Value, bool) {
					v, ok := m[name]
					return v, ok
				}))
				return true
			})
			if err1 != nil || err2 != nil {
				t.Fatalf("assignment errors: %v / %v on %s", err1, err2, q)
			}
			sort.Strings(compiled)
			sort.Strings(interp)
			if strings.Join(compiled, "\n") != strings.Join(interp, "\n") {
				t.Logf("query: %s (checkNegation=%v)", q, checkNeg)
				t.Logf("compiled: %v", compiled)
				t.Logf("interpreted: %v", interp)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEvalTuplesCompiledAgainstInterpreted compares the projection
// entry point on fixed head-variable queries over random states.
func TestEvalTuplesCompiledAgainstInterpreted(t *testing.T) {
	queries := []string{
		"q(x, y) :- R(x, y)",
		"q(x) :- R(x, x)",
		"q(y) :- R(x, y), S(y)",
		"q(y) :- R(x, y), !S(y)",
		"q(x) :- R(x, y), y < 2",
		"q(x, z) :- R(x, y), R(y, z), x != z",
	}
	for _, src := range queries {
		q := MustParse(src)
		for seed := int64(0); seed < 50; seed++ {
			r := rand.New(rand.NewSource(seed))
			s := randomState(r)
			compiled, err1 := EvalTuples(q, s)
			interp, err2 := evalTuplesInterpreted(q, s)
			if err1 != nil || err2 != nil {
				t.Fatalf("EvalTuples errors: %v / %v on %s", err1, err2, q)
			}
			ck := make([]string, len(compiled))
			for i, tp := range compiled {
				ck[i] = tp.Key()
			}
			ik := make([]string, len(interp))
			for i, tp := range interp {
				ik[i] = tp.Key()
			}
			sort.Strings(ck)
			sort.Strings(ik)
			if strings.Join(ck, "|") != strings.Join(ik, "|") {
				t.Errorf("%s seed %d: compiled %v vs interpreted %v", q, seed, compiled, interp)
			}
		}
	}
}

// fuzzState covers every relation the fuzz corpus queries mention: the
// R/S pair of the random tests and the bitcoin-shaped fixture schema.
func fuzzState() *relation.State {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "a:int", "b:int"))
	s.MustAddSchema(relation.NewSchema("S", "b:int"))
	s.MustAddSchema(relation.NewSchema("TxOut", "txId:int", "ser:int", "pk:string", "amount:float"))
	s.MustAddSchema(relation.NewSchema("TxIn",
		"prevTxId:int", "prevSer:int", "pk:string", "amount:float", "newTxId:int", "sig:string"))
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 2; j++ {
			s.MustInsert("R", value.NewTuple(value.Int(i), value.Int(j)))
		}
	}
	s.MustInsert("S", value.NewTuple(value.Int(1)))
	s.MustInsert("TxOut", value.NewTuple(value.Int(1), value.Int(1), value.Str("A"), value.Float(1)))
	s.MustInsert("TxOut", value.NewTuple(value.Int(2), value.Int(1), value.Str("B"), value.Float(4)))
	s.MustInsert("TxIn", value.NewTuple(
		value.Int(1), value.Int(1), value.Str("A"), value.Float(1), value.Int(2), value.Str("ASig")))
	return s
}

// FuzzEvalDifferential drives arbitrary parsed queries through both
// engines and the reference: any input that parses and validates
// against the fuzz schema must evaluate identically everywhere.
func FuzzEvalDifferential(f *testing.F) {
	seeds := []string{
		"q() :- R(x, y)",
		"q() :- R(x, y), S(y)",
		"q() :- R(x, y), !S(x), x < 3.5",
		"q() :- R(x, y), R(y, z), x != z",
		"q() :- TxOut(ntx, s, 'A', a)",
		"q() :- TxIn(pt, ps, 'A', 1, n1, 'ASig'), TxOut(n1, o, 'B', 4)",
		"q(sum(a)) > 5 :- TxIn(t, s, 'A', a, nt, 'ASig')",
		"q(cntd(y)) >= 2 :- R(x, y)",
		"q(count()) < 7 :- R(a, b)",
		"q(max(b)) > 0 :- R(a, b), !S(b)",
		"q(min(b)) <= 1 :- R(a, b), b != 2",
		"q() :- R(x, 9)",
		"q() :- S(x), x = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	state := fuzzState()
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // clean rejection
		}
		if q.Validate() != nil || !q.IsBoolean() {
			return
		}
		if q.CheckAgainst(state) != nil {
			return // references unknown relations or wrong arities
		}
		compiled, err1 := Eval(q, state)
		interp, err2 := EvalInterpreted(q, state)
		ref, err3 := EvalReference(q, state)
		if (err1 == nil) != (err2 == nil) || (err1 == nil) != (err3 == nil) {
			t.Fatalf("error divergence on %s: %v / %v / %v", q, err1, err2, err3)
		}
		if err1 == nil && (compiled != interp || compiled != ref) {
			t.Fatalf("verdict divergence on %s: compiled=%v interpreted=%v reference=%v",
				q, compiled, interp, ref)
		}
	})
}
