package query

import (
	"fmt"
	"sync"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// CheckAgainst validates the query's atoms against the view's schemas:
// every referenced relation must exist and arities must match.
func (q *Query) CheckAgainst(v relation.View) error {
	for _, a := range q.Atoms {
		sc := v.Schema(a.Rel)
		if sc == nil {
			return fmt.Errorf("query: unknown relation %q in %v", a.Rel, a)
		}
		if len(a.Args) != sc.Arity() {
			return fmt.Errorf("query: atom %v has %d arguments, relation has arity %d",
				a, len(a.Args), sc.Arity())
		}
	}
	return nil
}

// scratchPool recycles evaluation scratches across the convenience
// entry points below. Hot callers (the DCSat engines) hold their own
// Scratch per worker instead and call Plan.Eval directly.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// Eval evaluates the denial constraint's underlying query over the
// view, returning true if the query is satisfied (i.e. the denial
// constraint is violated in this world). The query must have been
// validated; Eval returns an error only for schema mismatches. The
// query is compiled on first use and the plan cached (see PlanFor).
func Eval(q *Query, v relation.View) (bool, error) {
	p, err := PlanFor(q, v)
	if err != nil {
		return false, err
	}
	sc := scratchPool.Get().(*Scratch)
	ok, err := p.Eval(v, sc)
	scratchPool.Put(sc)
	return ok, err
}

// EvalTuples evaluates a non-Boolean query: it returns the distinct
// head-variable projections of the satisfying assignments, in
// first-found order (set semantics). Boolean and aggregate queries are
// rejected.
func EvalTuples(q *Query, v relation.View) ([]value.Tuple, error) {
	if q.IsBoolean() || q.Agg != nil {
		return nil, fmt.Errorf("query: EvalTuples requires head variables, got %s", q)
	}
	p, err := PlanFor(q, v)
	if err != nil {
		return nil, err
	}
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	seen := make(map[string]bool)
	var out []value.Tuple
	sc.prepare(p, v, false, func() bool {
		proj := make(value.Tuple, len(p.headSlots))
		for i, s := range p.headSlots {
			proj[i] = sc.slotOr(s)
		}
		key := proj.Key()
		if !seen[key] {
			seen[key] = true
			out = append(out, proj)
		}
		return true
	})
	sc.run()
	sc.finish()
	return out, nil
}

// Binding is the variable assignment Assignments yields: a view into
// the running evaluation's slots. It is only valid inside the yield
// callback; copy values out to retain them.
type Binding struct {
	plan *Plan
	sc   *Scratch
}

// Value returns the bound value of the named variable, or ok=false when
// the query has no such variable bound by a positive atom.
func (b *Binding) Value(name string) (value.Value, bool) {
	s, ok := b.plan.slotOf[name]
	if !ok {
		return value.Null, false
	}
	return b.sc.slots[s], true
}

// Vars returns the names of the variables the binding carries (those
// bound by positive atoms), in slot order.
func (b *Binding) Vars() []string { return b.plan.slotNames }

// Assignments enumerates the assignments satisfying the query body over
// the view, calling yield with each binding (the binding is a live view
// into evaluation state — read it only inside the callback). When
// checkNegation is false, negated atoms are ignored, which the PTIME
// solvers use to find candidate assignments whose negations must be
// re-checked against a smaller world than v. The aggregate head, if
// any, is ignored. yield returning false stops the enumeration.
func Assignments(q *Query, v relation.View, checkNegation bool, yield func(b *Binding) bool) error {
	p, err := PlanFor(q, v)
	if err != nil {
		return err
	}
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	b := &Binding{plan: p, sc: sc}
	sc.prepare(p, v, !checkNegation, func() bool { return yield(b) })
	sc.run()
	sc.finish()
	return nil
}
