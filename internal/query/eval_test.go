package query

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// fixtureView builds a small bitcoin-shaped state:
//
//	TxOut: (1,1,A,1) (2,1,B,4) (2,2,A,1) (3,1,C,5)
//	TxIn:  (1,1,A,1,2,ASig) (2,1,B,4,3,BSig)
//	Trusted: (A) (B)
func fixtureView(t *testing.T) *relation.State {
	t.Helper()
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("TxOut", "txId:int", "ser:int", "pk:string", "amount:float"))
	s.MustAddSchema(relation.NewSchema("TxIn",
		"prevTxId:int", "prevSer:int", "pk:string", "amount:float", "newTxId:int", "sig:string"))
	s.MustAddSchema(relation.NewSchema("Trusted", "pk:string"))
	outs := [][4]any{{1, 1, "A", 1.0}, {2, 1, "B", 4.0}, {2, 2, "A", 1.0}, {3, 1, "C", 5.0}}
	for _, o := range outs {
		s.MustInsert("TxOut", value.NewTuple(
			value.Int(int64(o[0].(int))), value.Int(int64(o[1].(int))),
			value.Str(o[2].(string)), value.Float(o[3].(float64))))
	}
	ins := [][6]any{{1, 1, "A", 1.0, 2, "ASig"}, {2, 1, "B", 4.0, 3, "BSig"}}
	for _, i := range ins {
		s.MustInsert("TxIn", value.NewTuple(
			value.Int(int64(i[0].(int))), value.Int(int64(i[1].(int))),
			value.Str(i[2].(string)), value.Float(i[3].(float64)),
			value.Int(int64(i[4].(int))), value.Str(i[5].(string))))
	}
	s.MustInsert("Trusted", value.NewTuple(value.Str("A")))
	s.MustInsert("Trusted", value.NewTuple(value.Str("B")))
	return s
}

func mustEval(t *testing.T, q *Query, v relation.View) bool {
	t.Helper()
	got, err := Eval(q, v)
	if err != nil {
		t.Fatalf("Eval(%s): %v", q, err)
	}
	ref, err := EvalReference(q, v)
	if err != nil {
		t.Fatalf("EvalReference(%s): %v", q, err)
	}
	if got != ref {
		t.Fatalf("Eval(%s) = %v but reference = %v", q, got, ref)
	}
	return got
}

func TestEvalSimple(t *testing.T) {
	v := fixtureView(t)
	if !mustEval(t, MustParse("q() :- TxOut(t, s, 'A', a)"), v) {
		t.Error("existing pk not found")
	}
	if mustEval(t, MustParse("q() :- TxOut(t, s, 'Z', a)"), v) {
		t.Error("missing pk found")
	}
}

func TestEvalJoin(t *testing.T) {
	v := fixtureView(t)
	// Path of length 2: an output of tx t consumed by an input creating t2.
	q := MustParse("q() :- TxOut(t, s, pk, a), TxIn(t, s, pk, a, t2, sig), TxOut(t2, s2, pk2, a2)")
	if !mustEval(t, q, v) {
		t.Error("join path not found")
	}
	// Join with a constant that breaks it.
	q2 := MustParse("q() :- TxOut(t, s, pk, a), TxIn(t, s, pk, a, t2, sig), TxOut(t2, s2, 'Z', a2)")
	if mustEval(t, q2, v) {
		t.Error("impossible join found")
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	v := fixtureView(t)
	// Same amount on both sides: TxOut(2,1,B,4) has txId != ser; the
	// repeated variable x forces txId = ser, matched only by (1,1,...).
	q := MustParse("q() :- TxOut(x, x, pk, a)")
	if !mustEval(t, q, v) {
		t.Error("repeated-variable match (1,1,A,1) not found")
	}
	q2 := MustParse("q() :- TxIn(x, x, pk, a, x, sig)")
	if mustEval(t, q2, v) {
		t.Error("triple repetition cannot match")
	}
}

func TestEvalComparisons(t *testing.T) {
	v := fixtureView(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"q() :- TxOut(t, s, pk, a), a > 4.5", true}, // amount 5
		{"q() :- TxOut(t, s, pk, a), a > 5", false},
		{"q() :- TxOut(t, s, pk, a), a >= 5", true},
		{"q() :- TxOut(t, s, pk, a), a < 1", false},
		{"q() :- TxOut(t, s, pk, a), a <= 1", true},
		{"q() :- TxOut(t, s, pk, a), pk = 'C'", true},
		{"q() :- TxOut(t, s, pk, a), pk != 'A', pk != 'B', pk != 'C'", false},
		{"q() :- TxOut(t1, s1, 'A', a), TxOut(t2, s2, 'A', a2), t1 != t2", true},
	}
	for _, c := range cases {
		if got := mustEval(t, MustParse(c.src), v); got != c.want {
			t.Errorf("Eval(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalNegation(t *testing.T) {
	v := fixtureView(t)
	// Paper's q2: money sent to an untrusted key. C is untrusted.
	q := MustParse("q() :- TxOut(t, s, pk, a), !Trusted(pk)")
	if !mustEval(t, q, v) {
		t.Error("untrusted output not found")
	}
	// All inputs' pks are trusted.
	q2 := MustParse("q() :- TxIn(t, s, pk, a, n, sig), !Trusted(pk)")
	if mustEval(t, q2, v) {
		t.Error("all input pks are trusted")
	}
}

func TestEvalAggregates(t *testing.T) {
	v := fixtureView(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"q(count()) > 3 :- TxOut(t, s, pk, a)", true}, // 4 outputs
		{"q(count()) > 4 :- TxOut(t, s, pk, a)", false},
		{"q(count()) = 4 :- TxOut(t, s, pk, a)", true},
		{"q(count()) < 5 :- TxOut(t, s, pk, a)", true},
		{"q(cntd(pk)) = 3 :- TxOut(t, s, pk, a)", true}, // A, B, C
		{"q(cntd(t)) > 2 :- TxOut(t, s, pk, a)", true},  // 1, 2, 3
		{"q(cntd(t)) > 3 :- TxOut(t, s, pk, a)", false},
		{"q(sum(a)) > 10 :- TxOut(t, s, pk, a)", true}, // 11
		{"q(sum(a)) > 11 :- TxOut(t, s, pk, a)", false},
		{"q(sum(a)) = 11 :- TxOut(t, s, pk, a)", true},
		{"q(max(a)) = 5 :- TxOut(t, s, pk, a)", true},
		{"q(max(a)) > 5 :- TxOut(t, s, pk, a)", false},
		{"q(min(a)) < 2 :- TxOut(t, s, pk, a)", true},
		{"q(min(a)) < 1 :- TxOut(t, s, pk, a)", false},
		// Filtered aggregate: Alice's (pk=A) total received.
		{"q(sum(a)) = 2 :- TxOut(t, s, 'A', a)", true},
		// Empty bag is false regardless of the comparison.
		{"q(count()) < 100 :- TxOut(t, s, 'Z', a)", false},
		{"q(sum(a)) < 100 :- TxOut(t, s, 'Z', a)", false},
	}
	for _, c := range cases {
		if got := mustEval(t, MustParse(c.src), v); got != c.want {
			t.Errorf("Eval(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalCountsAssignmentsNotTuples(t *testing.T) {
	// Two distinct assignments project onto the same value: count keeps
	// both, cntd collapses them.
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "a:int", "b:int"))
	s.MustInsert("R", value.NewTuple(value.Int(1), value.Int(10)))
	s.MustInsert("R", value.NewTuple(value.Int(1), value.Int(20)))
	if !mustEval(t, MustParse("q(count()) = 2 :- R(a, b)"), s) {
		t.Error("count should see two assignments")
	}
	if !mustEval(t, MustParse("q(cntd(a)) = 1 :- R(a, b)"), s) {
		t.Error("cntd(a) should collapse to one")
	}
	if !mustEval(t, MustParse("q(sum(a)) = 2 :- R(a, b)"), s) {
		t.Error("sum over the bag should be 2")
	}
}

func TestEvalIntFloatUnification(t *testing.T) {
	// Query constants written as ints must match float columns.
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "a:float"))
	s.MustInsert("R", value.NewTuple(value.Int(1))) // normalized to 1.0
	if !mustEval(t, MustParse("q() :- R(1)"), s) {
		t.Error("int constant should match normalized float column")
	}
	if !mustEval(t, MustParse("q() :- R(1.0)"), s) {
		t.Error("float constant should match")
	}
}

func TestEvalOnOverlay(t *testing.T) {
	base := fixtureView(t)
	tx := relation.NewTransaction("T").
		Add("TxOut", value.NewTuple(value.Int(9), value.Int(1), value.Str("Z"), value.Float(2)))
	o := relation.NewOverlay(base, tx)
	q := MustParse("q() :- TxOut(t, s, 'Z', a)")
	if !mustEval(t, q, o) {
		t.Error("overlay tuple invisible to evaluator")
	}
	if mustEval(t, q, base) {
		t.Error("base state mutated by overlay")
	}
}

func TestEvalSchemaErrors(t *testing.T) {
	v := fixtureView(t)
	if _, err := Eval(MustParse("q() :- Missing(x)"), v); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := Eval(MustParse("q() :- TxOut(x)"), v); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := EvalReference(MustParse("q() :- Missing(x)"), v); err == nil {
		t.Error("reference: unknown relation accepted")
	}
}

// randomState builds a random instance over R(a,b), S(b) with small
// domains so joins, negation, and aggregates all have bite.
func randomState(r *rand.Rand) *relation.State {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("R", "a:int", "b:int"))
	s.MustAddSchema(relation.NewSchema("S", "b:int"))
	for i, n := 0, r.Intn(8); i < n; i++ {
		s.MustInsert("R", value.NewTuple(value.Int(int64(r.Intn(3))), value.Int(int64(r.Intn(3)))))
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		s.MustInsert("S", value.NewTuple(value.Int(int64(r.Intn(3)))))
	}
	return s
}

// randomQuery assembles a random safe query over R and S.
func randomQuery(r *rand.Rand) *Query {
	q := &Query{Name: "q"}
	term := func(pool []string) Term {
		if r.Intn(4) == 0 {
			return C(value.Int(int64(r.Intn(3))))
		}
		return V(pool[r.Intn(len(pool))])
	}
	vars := []string{"x", "y", "z"}
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		q.Atoms = append(q.Atoms, Atom{Rel: "R", Args: []Term{term(vars), term(vars)}})
	}
	// Collect variables actually bound by positive atoms.
	bound := map[string]bool{}
	var boundList []string
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() && !bound[t.Var] {
				bound[t.Var] = true
				boundList = append(boundList, t.Var)
			}
		}
	}
	if len(boundList) == 0 {
		q.Atoms[0].Args[0] = V("x")
		boundList = []string{"x"}
	}
	if r.Intn(2) == 0 {
		q.Atoms = append(q.Atoms, Atom{Rel: "S", Args: []Term{V(boundList[r.Intn(len(boundList))])}, Negated: r.Intn(2) == 0})
	}
	if r.Intn(2) == 0 {
		ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		q.Comparisons = append(q.Comparisons, Comparison{
			Left:  V(boundList[r.Intn(len(boundList))]),
			Op:    ops[r.Intn(len(ops))],
			Right: C(value.Int(int64(r.Intn(3)))),
		})
	}
	if r.Intn(2) == 0 {
		funcs := []AggFunc{AggCount, AggCntd, AggSum, AggMax, AggMin}
		fn := funcs[r.Intn(len(funcs))]
		head := &AggHead{Func: fn, Op: []CmpOp{OpEq, OpLt, OpGt}[r.Intn(3)], Bound: value.Int(int64(r.Intn(5)))}
		if fn != AggCount {
			head.Vars = []string{boundList[r.Intn(len(boundList))]}
		}
		q.Agg = head
	}
	if q.Validate() != nil {
		// Fall back to a trivially safe query; the generator above can
		// only fail via unsafe aggregate vars, which boundList prevents,
		// but keep the guard for robustness.
		return MustParse("q() :- R(x, y)")
	}
	return q
}

// TestEvalAgainstReference is the central evaluator property test:
// the planned, index-backed evaluator and the naive reference evaluator
// agree on random databases and random queries.
func TestEvalAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		q := randomQuery(r)
		got, err1 := Eval(q, s)
		want, err2 := EvalReference(q, s)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval errors: %v / %v on %s", err1, err2, q)
		}
		if got != want {
			t.Logf("query: %s", q)
			var dump []string
			s.Scan("R", func(tp value.Tuple) bool { dump = append(dump, "R"+tp.String()); return true })
			s.Scan("S", func(tp value.Tuple) bool { dump = append(dump, "S"+tp.String()); return true })
			t.Logf("state: %v", dump)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvalPlanOrderUsesConstants(t *testing.T) {
	// Not a behavioural difference, but exercise planning on a query
	// whose best start is the constant-bearing atom listed last.
	v := fixtureView(t)
	q := MustParse("q() :- TxIn(t, s, pk, a, n, sig), TxOut(t, s, pk, a), TxOut(n, s2, 'C', a2)")
	if !mustEval(t, q, v) {
		t.Error("constant-led plan failed to find the path to C")
	}
}

func ExampleEval() {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("TxOut", "txId:int", "ser:int", "pk:string", "amount:float"))
	s.MustInsert("TxOut", value.NewTuple(value.Int(1), value.Int(1), value.Str("BobPK"), value.Float(1)))
	q := MustParse("q() :- TxOut(t, s, 'BobPK', a)")
	violated, _ := Eval(q, s)
	fmt.Println(violated)
	// Output: true
}
