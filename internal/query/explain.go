package query

import (
	"fmt"
	"strings"

	"blockchaindb/internal/relation"
)

// Explain renders the compiled plan for the query against the view: the
// join order chosen for the positive atoms, which argument positions
// each step binds through an index lookup versus a full scan, where
// each comparison and negated atom was pushed down (the earliest step
// at which its variables are bound), and the query's static properties.
// Intended for debugging slow denial constraints and for teaching what
// the evaluator does.
func Explain(q *Query, v relation.View) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	p, err := Compile(q, v)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", q)
	fmt.Fprintf(&b, "properties: positive=%v monotonic=%v connected=%v aggregate=%v\n",
		q.IsPositive(), q.IsMonotonic(), q.IsConnected(), q.IsAggregate())
	for _, reason := range p.deadConds {
		fmt.Fprintf(&b, "unsatisfiable: %s (the body can never hold)\n", reason)
	}
	for _, a := range p.droppedNegs {
		fmt.Fprintf(&b, "dropped: %s (its constant cannot occur in the column, so the negation always holds)\n", a)
	}
	for i := range p.preNegs {
		fmt.Fprintf(&b, "first: check %s absent (ground; tested once per evaluation)\n", p.preNegs[i].src)
	}
	for i := range p.steps {
		st := &p.steps[i]
		sc := v.Schema(st.rel)
		var lookupCols, freeVars []string
		for j := range st.key {
			kp := &st.key[j]
			lookupCols = append(lookupCols, fmt.Sprintf("%s=%s", sc.Attrs[kp.col].Name, kp.src))
		}
		for _, out := range st.outSlots {
			freeVars = append(freeVars, p.slotNames[out.slot])
		}
		access := "scan"
		if len(lookupCols) > 0 {
			access = "index lookup on " + strings.Join(lookupCols, ", ")
		}
		fmt.Fprintf(&b, "step %d: %s (%d rows) via %s", i+1, st.rel, v.Count(st.rel), access)
		if len(freeVars) > 0 {
			fmt.Fprintf(&b, ", binding %s", strings.Join(freeVars, ", "))
		}
		b.WriteByte('\n')
		for _, eq := range st.eqChecks {
			fmt.Fprintf(&b, "  require columns %s = %s (repeated variable)\n",
				sc.Attrs[eq[0]].Name, sc.Attrs[eq[1]].Name)
		}
		for j := range st.cmps {
			fmt.Fprintf(&b, "  then: check %s (pushed down to step %d)\n", st.cmps[j].src, i+1)
		}
		for j := range st.negs {
			fmt.Fprintf(&b, "  then: check %s absent (pushed down to step %d)\n", st.negs[j].src, i+1)
		}
	}
	for _, c := range p.foldedCmps {
		fmt.Fprintf(&b, "folded: %s is constant and true\n", c)
	}
	if q.Agg != nil {
		fmt.Fprintf(&b, "fold: %s over all assignments", q.Agg)
		if q.IsMonotonic() {
			b.WriteString(" (early exit once the threshold is crossed)")
		}
		b.WriteByte('\n')
	}
	if len(q.HeadVars) > 0 {
		fmt.Fprintf(&b, "project: distinct (%s)\n", strings.Join(q.HeadVars, ", "))
	}
	return b.String(), nil
}
