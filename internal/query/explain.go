package query

import (
	"fmt"
	"strings"

	"blockchaindb/internal/relation"
)

// Explain renders the evaluator's plan for the query against the view:
// the join order chosen for the positive atoms, which argument
// positions each step binds through an index lookup versus a full scan,
// the conditions checked along the way, and the query's static
// properties. Intended for debugging slow denial constraints and for
// teaching what the evaluator does.
func Explain(q *Query, v relation.View) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	if err := q.CheckAgainst(v); err != nil {
		return "", err
	}
	ev := newEvaluator(q, v)
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", q)
	fmt.Fprintf(&b, "properties: positive=%v monotonic=%v connected=%v aggregate=%v\n",
		q.IsPositive(), q.IsMonotonic(), q.IsConnected(), q.IsAggregate())
	bound := make(map[string]bool)
	for step, idx := range ev.order {
		atom := ev.pos[idx]
		var lookupCols, freeVars []string
		sc := v.Schema(atom.Rel)
		for i, t := range atom.Args {
			name := sc.Attrs[i].Name
			switch {
			case !t.IsVar():
				lookupCols = append(lookupCols, fmt.Sprintf("%s=%s", name, t.Const))
			case bound[t.Var]:
				lookupCols = append(lookupCols, fmt.Sprintf("%s=%s", name, t.Var))
			default:
				freeVars = append(freeVars, t.Var)
			}
		}
		access := "scan"
		if len(lookupCols) > 0 {
			access = "index lookup on " + strings.Join(lookupCols, ", ")
		}
		fmt.Fprintf(&b, "step %d: %s (%d rows) via %s", step+1, atom.Rel, v.Count(atom.Rel), access)
		if len(freeVars) > 0 {
			fmt.Fprintf(&b, ", binding %s", strings.Join(freeVars, ", "))
		}
		b.WriteByte('\n')
		for _, t := range atom.Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, a := range q.Negatives() {
		fmt.Fprintf(&b, "then: check %s absent\n", a)
	}
	for _, c := range q.Comparisons {
		fmt.Fprintf(&b, "then: check %s\n", c)
	}
	if q.Agg != nil {
		fmt.Fprintf(&b, "fold: %s over all assignments", q.Agg)
		if q.IsMonotonic() {
			b.WriteString(" (early exit once the threshold is crossed)")
		}
		b.WriteByte('\n')
	}
	if len(q.HeadVars) > 0 {
		fmt.Fprintf(&b, "project: distinct (%s)\n", strings.Join(q.HeadVars, ", "))
	}
	return b.String(), nil
}
