package query

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	v := fixtureView(t)
	q := MustParse("q() :- TxIn(t, s, pk, a, n, sig), TxOut(t, s, pk, a), TxOut(n, s2, 'C', a2)")
	plan, err := Explain(q, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"step 1:", "step 2:", "step 3:",
		"index lookup on", "binding",
		"monotonic=true", "connected=true",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// The constant-bearing atom must be planned first.
	firstStep := plan[strings.Index(plan, "step 1:"):]
	firstStep = firstStep[:strings.IndexByte(firstStep, '\n')]
	if !strings.Contains(firstStep, "pk='C'") {
		t.Errorf("constant atom not planned first: %s", firstStep)
	}
}

func TestExplainConditionsAndAggregates(t *testing.T) {
	v := fixtureView(t)
	agg := MustParse("q(sum(a)) > 5 :- TxOut(t, s, pk, a), !Trusted(pk), a > 0")
	// Negation makes it non-monotonic; still explainable.
	plan, err := Explain(agg, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"check !Trusted(pk) absent", "check a > 0", "fold: sum(a) > 5"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if strings.Contains(plan, "early exit") {
		t.Error("non-monotonic aggregate must not claim early exit")
	}
	mono := MustParse("q(count()) > 3 :- TxOut(t, s, pk, a)")
	plan2, err := Explain(mono, v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2, "early exit") {
		t.Error("monotonic aggregate should note early exit")
	}
	head := MustParse("q(pk) :- TxOut(t, s, pk, a)")
	plan3, err := Explain(head, v)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan3, "project: distinct (pk)") {
		t.Errorf("head projection missing:\n%s", plan3)
	}
}

func TestExplainErrors(t *testing.T) {
	v := fixtureView(t)
	if _, err := Explain(MustParse("q() :- Missing(x)"), v); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := Explain(&Query{}, v); err == nil {
		t.Error("invalid query accepted")
	}
}
