package query

import (
	"strings"
	"testing"
)

// FuzzParse hardens the parser: arbitrary input must either fail
// cleanly or produce a query that re-parses to the same rendering
// (round-trip stability), never panic.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"q() :- TxOut(ntx, s, 'U8Pk', a)",
		"q1() :- TxIn(pt1, ps1, 'A', 1, n1, 'S'), TxOut(n1, o, 'B', 1), n1 != n2, TxOut(n2, o2, 'B', 1)",
		"q2() :- R(x, y), !S(x), x < 3.5",
		"q3(sum(a)) > 5 :- TxIn(t, s, 'P', a, nt, 'S')",
		"q4(cntd(n)) >= 10 :- R(n)",
		"q5(x, y) :- R(x, y), S(y)",
		"q(count()) < 7 :- R(a, -2, \"dq\", null, true)",
		"q() :- R('it\\'s', x), x = 'y'.",
		"q(", "q() :-", ":-", "q() :- R(", "q(x y) :- R(x)", "((((",
		"q() :- R(x), not S(x)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // clean rejection
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", input, rendered, err)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, rendered, got)
		}
	})
}

// TestParseNoPanicOnControlChars runs a deterministic sweep of nasty
// single-byte mutations over a valid query.
func TestParseNoPanicOnControlChars(t *testing.T) {
	base := "q(sum(a)) > 5 :- TxIn(t, s, 'P', a, nt, 'S'), t != nt"
	for i := 0; i < len(base); i++ {
		for _, c := range []byte{0, '\'', '"', '\\', '!', ':', '(', ')', 0xFF} {
			mutated := base[:i] + string(c) + base[i+1:]
			q, err := Parse(mutated)
			if err == nil && q == nil {
				t.Fatalf("nil query without error for %q", mutated)
			}
		}
	}
	// Long inputs.
	if _, err := Parse("q() :- R(" + strings.Repeat("x, ", 500) + "y)"); err != nil {
		t.Log("wide atom rejected (acceptable):", err)
	}
}
