package query

import (
	"fmt"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// This file is the legacy interpreted evaluator: a backtracking join
// that re-derives the plan (join order, bound/free column splits) on
// every invocation and binds variables through a map. Production paths
// route through the compiled engine in plan.go; the interpreter is
// retained as a second, independently-written oracle for the
// compiled-vs-interpreted differential tests (the naive EvalReference
// being the third).

// EvalInterpreted evaluates the query with the legacy interpreted
// evaluator. Semantics are identical to Eval; only the execution
// strategy differs.
func EvalInterpreted(q *Query, v relation.View) (bool, error) {
	if err := q.CheckAgainst(v); err != nil {
		return false, err
	}
	ev := newEvaluator(q, v)
	if q.Agg == nil {
		found := false
		ev.run(func() bool {
			found = true
			return false // stop at first satisfying assignment
		})
		return found, nil
	}
	return ev.aggregate()
}

// evalTuplesInterpreted is the interpreted twin of EvalTuples, for
// differential tests.
func evalTuplesInterpreted(q *Query, v relation.View) ([]value.Tuple, error) {
	if q.IsBoolean() || q.Agg != nil {
		return nil, fmt.Errorf("query: EvalTuples requires head variables, got %s", q)
	}
	if err := q.CheckAgainst(v); err != nil {
		return nil, err
	}
	ev := newEvaluator(q, v)
	seen := make(map[string]bool)
	var out []value.Tuple
	ev.run(func() bool {
		proj := make(value.Tuple, len(q.HeadVars))
		for i, hv := range q.HeadVars {
			proj[i] = ev.binding[hv]
		}
		key := proj.Key()
		if !seen[key] {
			seen[key] = true
			out = append(out, proj)
		}
		return true
	})
	return out, nil
}

// assignmentsInterpreted is the interpreted twin of Assignments, for
// differential tests. The yielded map is reused across calls.
func assignmentsInterpreted(q *Query, v relation.View, checkNegation bool, yield func(binding map[string]value.Value) bool) error {
	if err := q.CheckAgainst(v); err != nil {
		return err
	}
	ev := newEvaluator(q, v)
	ev.skipNegation = !checkNegation
	ev.run(func() bool { return yield(ev.binding) })
	return nil
}

// evaluator is a backtracking join over the positive atoms, using view
// hash lookups on the columns already bound at each step. Negated atoms
// and comparisons are checked as soon as their variables are bound.
type evaluator struct {
	q            *Query
	v            relation.View
	pos          []Atom
	order        []int
	binding      map[string]value.Value
	skipNegation bool

	// Local instrument counts, flushed to the registry once per run —
	// keeps the per-tuple hot path free of atomics.
	lookups int64
	scans   int64
	probes  int64
}

func newEvaluator(q *Query, v relation.View) *evaluator {
	ev := &evaluator{q: q, v: v, pos: q.Positives(), binding: make(map[string]value.Value)}
	ev.order = greedyOrder(ev.pos, v)
	return ev
}

// run enumerates satisfying assignments, invoking yield for each; yield
// returning false stops the enumeration.
func (ev *evaluator) run(yield func() bool) {
	ev.step(0, yield)
	mEvals.Inc()
	mIndexLookups.Add(ev.lookups)
	mScans.Add(ev.scans)
	mTuplesProbed.Add(ev.probes)
	ev.lookups, ev.scans, ev.probes = 0, 0, 0
}

// step processes the atom at position depth in the plan; at the bottom
// it re-verifies all conditions and yields.
func (ev *evaluator) step(depth int, yield func() bool) bool {
	if depth == len(ev.order) {
		if !ev.conditionsHold(true) {
			return true
		}
		return yield()
	}
	atom := ev.pos[ev.order[depth]]
	sc := ev.v.Schema(atom.Rel)
	// Split argument positions into bound (constant or bound variable)
	// and free. Bound values are normalized to the column kind so the
	// hash lookup matches stored (normalized) tuples.
	var boundCols []int
	var boundVals value.Tuple
	newVars := make(map[string]int) // var -> first free position
	for i, t := range atom.Args {
		if !t.IsVar() {
			boundCols = append(boundCols, i)
			boundVals = append(boundVals, sc.NormalizeValue(t.Const, i))
			continue
		}
		if val, ok := ev.binding[t.Var]; ok {
			boundCols = append(boundCols, i)
			boundVals = append(boundVals, sc.NormalizeValue(val, i))
			continue
		}
		if _, dup := newVars[t.Var]; !dup {
			newVars[t.Var] = i
		}
	}
	tryTuple := func(tup value.Tuple) bool {
		ev.probes++
		// Verify repeated new variables agree across positions.
		for i, t := range atom.Args {
			if t.IsVar() {
				if first, ok := newVars[t.Var]; ok && first != i {
					if !tup[first].Equal(tup[i]) {
						return true // mismatch; keep scanning
					}
				}
			}
		}
		var added []string
		for v, i := range newVars {
			ev.binding[v] = tup[i]
			added = append(added, v)
		}
		keepGoing := true
		if ev.conditionsHold(false) {
			keepGoing = ev.step(depth+1, yield)
		}
		for _, v := range added {
			delete(ev.binding, v)
		}
		return keepGoing
	}
	if len(boundCols) > 0 {
		ev.lookups++
		return ev.v.Lookup(atom.Rel, boundCols, boundVals.Key(), tryTuple)
	}
	ev.scans++
	return ev.v.Scan(atom.Rel, tryTuple)
}

// conditionsHold checks the negated atoms and comparisons whose
// variables are currently all bound; when final is true every condition
// must be fully bound (guaranteed for safe queries) and is checked.
func (ev *evaluator) conditionsHold(final bool) bool {
	if !ev.skipNegation {
		for _, a := range ev.q.Negatives() {
			tup, ok := ev.ground(a.Args)
			if !ok {
				if final {
					return false
				}
				continue
			}
			if ev.v.Contains(a.Rel, tup) {
				return false
			}
		}
	}
	for _, c := range ev.q.Comparisons {
		lv, lok := ev.termValue(c.Left)
		rv, rok := ev.termValue(c.Right)
		if !lok || !rok {
			if final {
				return false
			}
			continue
		}
		if !c.Op.Eval(lv.Compare(rv)) {
			return false
		}
	}
	return true
}

func (ev *evaluator) termValue(t Term) (value.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := ev.binding[t.Var]
	return v, ok
}

func (ev *evaluator) ground(args []Term) (value.Tuple, bool) {
	tup := make(value.Tuple, len(args))
	for i, t := range args {
		v, ok := ev.termValue(t)
		if !ok {
			return nil, false
		}
		tup[i] = v
	}
	return tup, true
}

// aggregate enumerates all satisfying assignments, folds the aggregate
// over the bag of head projections, and applies the head comparison.
// Per the paper's chosen semantics, an empty bag yields false. For
// monotone heads (count/cntd/sum/max with > or >=) the enumeration
// stops as soon as the threshold is reached.
func (ev *evaluator) aggregate() (bool, error) {
	h := ev.q.Agg
	earlyOut := ev.q.IsMonotonic()
	var (
		n        int64
		sumI     int64
		sumF     float64
		sawF     bool
		extreme  value.Value
		first    = true
		distinct map[string]bool
	)
	if h.Func == AggCntd {
		distinct = make(map[string]bool)
	}
	crossed := func(cur value.Value) bool { return h.Op.Eval(cur.Compare(h.Bound)) }
	stop := false
	ev.run(func() bool {
		proj := make(value.Tuple, len(h.Vars))
		for i, v := range h.Vars {
			proj[i] = ev.binding[v]
		}
		switch h.Func {
		case AggCount:
			n++
			if earlyOut && crossed(value.Int(n)) {
				stop = true
			}
		case AggCntd:
			distinct[proj.Key()] = true
			if earlyOut && crossed(value.Int(int64(len(distinct)))) {
				stop = true
			}
		case AggSum:
			v := proj[0]
			if v.Kind() == value.KindFloat || sawF {
				sawF = true
				sumF += v.AsFloat()
			} else if v.Kind() == value.KindInt {
				sumI += v.AsInt()
			} else {
				sawF = true
				sumF += v.AsFloat() // panics for non-numerics, as documented
			}
			if earlyOut && crossed(sumValue(sumI, sumF, sawF)) {
				stop = true
			}
		case AggMax:
			if first || proj[0].Compare(extreme) > 0 {
				extreme = proj[0]
			}
			if earlyOut && crossed(extreme) {
				stop = true
			}
		case AggMin:
			if first || proj[0].Compare(extreme) < 0 {
				extreme = proj[0]
			}
		}
		first = false
		return !stop
	})
	if first {
		// Empty bag: false under the paper's chosen semantics.
		return false, nil
	}
	var result value.Value
	switch h.Func {
	case AggCount:
		result = value.Int(n)
	case AggCntd:
		result = value.Int(int64(len(distinct)))
	case AggSum:
		result = sumValue(sumI, sumF, sawF)
	case AggMax, AggMin:
		result = extreme
	default:
		return false, fmt.Errorf("query: unknown aggregate %q", h.Func)
	}
	return h.Op.Eval(result.Compare(h.Bound)), nil
}

func sumValue(sumI int64, sumF float64, sawF bool) value.Value {
	if sawF {
		return value.Float(sumF + float64(sumI))
	}
	return value.Int(sumI)
}
