package query

import "blockchaindb/internal/obs"

// Evaluator instruments on the default registry. The evaluator counts
// locally (plain struct fields on the hot path) and flushes once per
// evaluation, so the per-tuple cost is a non-atomic increment.
var (
	mEvals = obs.Default.Counter("query_evals_total",
		"query evaluations (one per world or candidate check)")
	mIndexLookups = obs.Default.Counter("query_index_lookups_total",
		"atoms resolved through indexed hash lookups")
	mScans = obs.Default.Counter("query_scans_total",
		"atoms resolved through full relation scans")
	mTuplesProbed = obs.Default.Counter("query_tuples_probed_total",
		"candidate tuples tested during join backtracking")
	mCompileNs = obs.Default.Histogram("query_compile_ns",
		"nanoseconds spent compiling a query into a plan")
	mPlanCacheHits = obs.Default.Counter("query_plan_cache_hits",
		"plan-cache lookups answered by a still-valid cached plan")
	mPlanCacheMisses = obs.Default.Counter("query_plan_cache_misses",
		"plan-cache lookups that fell through to compilation")
)
