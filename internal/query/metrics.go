package query

import "blockchaindb/internal/obs"

// Evaluator instruments on the default registry. The evaluator counts
// locally (plain struct fields on the hot path) and flushes once per
// evaluation, so the per-tuple cost is a non-atomic increment. The
// eval counter is windowed: worlds-evaluated/sec is the evaluator's
// throughput signal on the ops dashboard.
var (
	mEvals = obs.DefaultWindows.Counter(obs.MetricQueryEvals,
		"query evaluations (one per world or candidate check)")
	mIndexLookups = obs.Default.Counter(obs.MetricQueryIndexLookups,
		"atoms resolved through indexed hash lookups")
	mScans = obs.Default.Counter(obs.MetricQueryScans,
		"atoms resolved through full relation scans")
	mTuplesProbed = obs.Default.Counter(obs.MetricQueryTuplesProbed,
		"candidate tuples tested during join backtracking")
	mCompileNs = obs.Default.Histogram(obs.MetricQueryCompileNS,
		"nanoseconds spent compiling a query into a plan")
	mPlanCacheHits = obs.Default.Counter(obs.MetricQueryPlanCacheHits,
		"plan-cache lookups answered by a still-valid cached plan")
	mPlanCacheMisses = obs.Default.Counter(obs.MetricQueryPlanCacheMiss,
		"plan-cache lookups that fell through to compilation")
)
