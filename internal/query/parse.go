package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"blockchaindb/internal/value"
)

// Parse parses a denial constraint from its textual form.
//
// Grammar (whitespace-insensitive; a trailing '.' is permitted):
//
//	query  := head ":-" body
//	head   := name "(" [var {"," var}] ")"
//	        | name "(" agg "(" [var {"," var}] ")" ")" cmp literal
//	body   := item {"," item}
//	item   := ["!" | "not"] name "(" term {"," term} ")"
//	        | term cmp term
//	term   := variable | literal
//	cmp    := "=" | "!=" | "<" | "<=" | ">" | ">="
//
// Identifiers are variables inside atom arguments; quoted strings
// ('...' or "...") and numbers are constants. Aggregate names are
// count, cntd, sum, max, min. Examples:
//
//	q() :- TxOut(ntx, s, 'U8Pk', a)
//	q(sum(a)) > 5 :- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')
//	q() :- TxIn(pt, ps, 'A', a, ntx, 'ASig'), TxOut(ntx, s, pk, a2), !Trusted(pk)
func Parse(input string) (*Query, error) {
	toks, err := tokenize(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and fixed queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokPunct // ( ) , :- . ! and comparison operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func tokenize(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.':
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c == ':':
			if i+1 < n && input[i+1] == '-' {
				toks = append(toks, token{tokPunct, ":-", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: stray ':' at %d", i)
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokPunct, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, "!", i})
				i++
			}
		case c == '<' || c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokPunct, string(c) + "=", i})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, string(c), i})
				i++
			}
		case c == '=':
			toks = append(toks, token{tokPunct, "=", i})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != quote {
				if input[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c == '-' || c >= '0' && c <= '9':
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
				(input[j] == '-' || input[j] == '+') && (input[j-1] == 'e' || input[j-1] == 'E')) {
				// Stop a trailing '.' that is the query terminator.
				if input[j] == '.' && (j+1 >= n || input[j+1] < '0' || input[j+1] > '9') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != text {
		return fmt.Errorf("query: expected %q at %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *parser) acceptPunct(text string) bool {
	if t := p.peek(); t.kind == tokPunct && t.text == text {
		p.pos++
		return true
	}
	return false
}

var aggFuncs = map[string]AggFunc{
	"count": AggCount, "cntd": AggCntd, "sum": AggSum, "max": AggMax, "min": AggMin,
}

var cmpOps = map[string]CmpOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseQuery() (*Query, error) {
	name := p.next()
	if name.kind != tokIdent {
		return nil, fmt.Errorf("query: expected head name at %d", name.pos)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	q := &Query{Name: name.text}
	if !p.acceptPunct(")") {
		// Either an aggregate head "agg(vars...)" or distinguished head
		// variables "x, y, ...". An identifier followed by '(' selects
		// the aggregate form.
		if first := p.peek(); first.kind == tokIdent &&
			p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			return p.parseAggregateHead(q)
		}
		for {
			v := p.next()
			if v.kind != tokIdent {
				return nil, fmt.Errorf("query: expected head variable at %d, got %q", v.pos, v.text)
			}
			q.HeadVars = append(q.HeadVars, v.text)
			if p.acceptPunct(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	return p.parseBody(q)
}

// parseAggregateHead continues after "name(" when the head is an
// aggregate: agg "(" vars ")" ")" cmp literal ":-" body.
func (p *parser) parseAggregateHead(q *Query) (*Query, error) {
	fn := p.next()
	agg, ok := aggFuncs[strings.ToLower(fn.text)]
	if fn.kind != tokIdent || !ok {
		return nil, fmt.Errorf("query: unknown aggregate %q at %d", fn.text, fn.pos)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	head := &AggHead{Func: agg}
	for !p.acceptPunct(")") {
		if len(head.Vars) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		v := p.next()
		if v.kind != tokIdent {
			return nil, fmt.Errorf("query: expected aggregate variable at %d", v.pos)
		}
		head.Vars = append(head.Vars, v.text)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	op := p.next()
	cmp, ok := cmpOps[op.text]
	if op.kind != tokPunct || !ok {
		return nil, fmt.Errorf("query: expected comparison after aggregate head at %d", op.pos)
	}
	head.Op = cmp
	bound := p.next()
	bv, err := literal(bound)
	if err != nil {
		return nil, err
	}
	head.Bound = bv
	q.Agg = head
	return p.parseBody(q)
}

// parseBody parses ":-" item {"," item} ["."] EOF.
func (p *parser) parseBody(q *Query) (*Query, error) {
	if err := p.expect(":-"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseItem(q); err != nil {
			return nil, err
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	p.acceptPunct(".")
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at %d: %q", t.pos, t.text)
	}
	return q, nil
}

func (p *parser) parseItem(q *Query) error {
	negated := false
	if p.acceptPunct("!") {
		negated = true
	} else if t := p.peek(); t.kind == tokIdent && t.text == "not" {
		// "not" is a keyword only when followed by an atom.
		if nt := p.toks[p.pos+1]; nt.kind == tokIdent {
			p.pos++
			negated = true
		}
	}
	start := p.pos
	first := p.next()
	if first.kind == tokIdent && p.acceptPunct("(") {
		// Relational atom.
		atom := Atom{Rel: first.text, Negated: negated}
		for !p.acceptPunct(")") {
			if len(atom.Args) > 0 {
				if err := p.expect(","); err != nil {
					return err
				}
			}
			t, err := p.parseTerm()
			if err != nil {
				return err
			}
			atom.Args = append(atom.Args, t)
		}
		q.Atoms = append(q.Atoms, atom)
		return nil
	}
	if negated {
		return fmt.Errorf("query: negation must precede a relational atom at %d", first.pos)
	}
	// Comparison: rewind and reparse as term cmp term.
	p.pos = start
	left, err := p.parseTerm()
	if err != nil {
		return err
	}
	op := p.next()
	cmp, ok := cmpOps[op.text]
	if op.kind != tokPunct || !ok {
		return fmt.Errorf("query: expected comparison operator at %d, got %q", op.pos, op.text)
	}
	right, err := p.parseTerm()
	if err != nil {
		return err
	}
	q.Comparisons = append(q.Comparisons, Comparison{Left: left, Op: cmp, Right: right})
	return nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		switch t.text {
		case "null":
			return C(value.Null), nil
		case "true":
			return C(value.Bool(true)), nil
		case "false":
			return C(value.Bool(false)), nil
		}
		return V(t.text), nil
	case tokString, tokNumber:
		v, err := literal(t)
		if err != nil {
			return Term{}, err
		}
		return C(v), nil
	default:
		return Term{}, fmt.Errorf("query: expected term at %d, got %q", t.pos, t.text)
	}
}

func literal(t token) (value.Value, error) {
	switch t.kind {
	case tokString:
		return value.Str(t.text), nil
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return value.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return value.Null, fmt.Errorf("query: bad number %q at %d", t.text, t.pos)
		}
		return value.Float(f), nil
	default:
		return value.Null, fmt.Errorf("query: expected literal at %d, got %q", t.pos, t.text)
	}
}
