package query

import (
	"strings"
	"testing"

	"blockchaindb/internal/value"
)

func TestParseSimple(t *testing.T) {
	q, err := Parse("q() :- TxOut(ntx, s, 'U8Pk', a)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" || len(q.Atoms) != 1 || q.Agg != nil {
		t.Fatalf("unexpected query: %+v", q)
	}
	a := q.Atoms[0]
	if a.Rel != "TxOut" || a.Negated || len(a.Args) != 4 {
		t.Fatalf("atom: %+v", a)
	}
	if !a.Args[0].IsVar() || a.Args[0].Var != "ntx" {
		t.Errorf("arg0: %+v", a.Args[0])
	}
	if a.Args[2].IsVar() || a.Args[2].Const.AsString() != "U8Pk" {
		t.Errorf("arg2: %+v", a.Args[2])
	}
}

func TestParsePaperQ1(t *testing.T) {
	// Example 4 of the paper: two distinct payments from Alice to Bob.
	src := `q1() :- TxIn(pt1, ps1, 'AlicePK', 1, ntx1, 'AliceSig'),
		TxOut(ntx1, ns1, 'BobPK', 1),
		TxIn(pt2, ps2, 'AlicePK', 1, ntx2, 'AliceSig'),
		TxOut(ntx2, ns2, 'BobPK', 1), ntx1 != ntx2`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 4 || len(q.Comparisons) != 1 {
		t.Fatalf("atoms=%d cmps=%d", len(q.Atoms), len(q.Comparisons))
	}
	c := q.Comparisons[0]
	if c.Op != OpNe || c.Left.Var != "ntx1" || c.Right.Var != "ntx2" {
		t.Errorf("comparison: %+v", c)
	}
	if !q.IsPositive() || !q.IsMonotonic() || !q.IsConnected() {
		t.Error("q1 should be positive, monotonic, and connected")
	}
}

func TestParseNegation(t *testing.T) {
	for _, src := range []string{
		"q2() :- TxIn(pt, ps, 'A', a, ntx, 'ASig'), TxOut(ntx, s, pk, a2), !Trusted(pk)",
		"q2() :- TxIn(pt, ps, 'A', a, ntx, 'ASig'), TxOut(ntx, s, pk, a2), not Trusted(pk)",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(q.Negatives()) != 1 || q.Negatives()[0].Rel != "Trusted" {
			t.Fatalf("negatives: %+v", q.Negatives())
		}
		if q.IsPositive() || q.IsMonotonic() {
			t.Error("negated query should be neither positive nor monotonic")
		}
	}
}

func TestParseAggregate(t *testing.T) {
	q, err := Parse("q3(sum(a)) > 5 :- TxIn(t, s, 'AlcPK', a, nt, 'AlcSig')")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg == nil || q.Agg.Func != AggSum || q.Agg.Op != OpGt {
		t.Fatalf("agg: %+v", q.Agg)
	}
	if !q.Agg.Bound.Equal(value.Int(5)) {
		t.Errorf("bound: %v", q.Agg.Bound)
	}
	if !q.IsMonotonic() {
		t.Error("sum > c should be monotonic")
	}
	if q.IsConnected() {
		t.Error("aggregate queries are not connected by definition")
	}

	q4, err := Parse("q4(cntd(ntx)) > 10 :- TxIn(pt, ps, 'A', a, ntx, 'ASig'), TxOut(ntx, s, 'B', a2)")
	if err != nil {
		t.Fatal(err)
	}
	if q4.Agg.Func != AggCntd || len(q4.Agg.Vars) != 1 {
		t.Fatalf("agg: %+v", q4.Agg)
	}
	qc, err := Parse("qc(count()) >= 3 :- TxOut(a, b, c, d)")
	if err != nil {
		t.Fatal(err)
	}
	if qc.Agg.Func != AggCount || len(qc.Agg.Vars) != 0 || qc.Agg.Op != OpGe {
		t.Fatalf("agg: %+v", qc.Agg)
	}
}

func TestParseLiteralsAndKeywords(t *testing.T) {
	q, err := Parse(`q() :- R(x, -3, 2.5, "dq", null, true, false), x > 0.`)
	if err != nil {
		t.Fatal(err)
	}
	args := q.Atoms[0].Args
	if !args[1].Const.Equal(value.Int(-3)) {
		t.Errorf("int literal: %v", args[1])
	}
	if !args[2].Const.Equal(value.Float(2.5)) {
		t.Errorf("float literal: %v", args[2])
	}
	if args[3].Const.AsString() != "dq" {
		t.Errorf("double-quoted string: %v", args[3])
	}
	if !args[4].Const.IsNull() {
		t.Errorf("null literal: %v", args[4])
	}
	if !args[5].Const.AsBool() || args[6].Const.AsBool() {
		t.Errorf("bool literals: %v %v", args[5], args[6])
	}
}

func TestParseEscapedQuote(t *testing.T) {
	q, err := Parse(`q() :- R('it\'s')`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Atoms[0].Args[0].Const.AsString(); got != "it's" {
		t.Errorf("escaped string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                               // empty
		"q(",                             // truncated
		"q() :-",                         // no body
		"q() :- R(x",                     // unterminated atom
		"q() :- R(x) extra",              // trailing tokens
		"q(avg(a)) > 5 :- R(a)",          // unknown aggregate
		"q(sum(a)) ? 5 :- R(a)",          // bad comparison
		"q(sum(a)) > :- R(a)",            // missing bound
		"q() :- R(x), !(y)",              // negation of non-atom
		"q() :- x > 1",                   // no positive atom (unsafe)
		"q() :- R(x), y > 1",             // unsafe comparison variable
		"q() :- R(x), !S(y)",             // unsafe negated variable
		"q(sum(a, b)) > 1 :- R(a), S(b)", // sum arity
		"q(cntd()) > 1 :- R(a)",          // cntd arity
		"q(sum(z)) > 1 :- R(a)",          // unsafe aggregate variable
		"q() :- R('unterminated",         // unterminated string
		"q() : R(x)",                     // stray colon
		"q() :- R(x), S(y) S(z)",         // missing comma
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParse("q(")
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"q() :- TxOut(ntx, s, 'U8Pk', a)",
		"q1() :- TxIn(pt1, ps1, 'A', 1, ntx1, 'AS'), TxOut(ntx1, ns1, 'B', 1), ntx1 != ntx2, TxOut(ntx2, x, 'B', 1)",
		"q2() :- TxIn(pt, ps, 'A', a, ntx, 'AS'), TxOut(ntx, s, pk, a2), !Trusted(pk)",
		"q3(sum(a)) > 5 :- TxIn(t, s, 'P', a, nt, 'S')",
		"q4(cntd(ntx)) >= 10 :- TxIn(pt, ps, 'P', a, ntx, 'S')",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed: %q -> %q", q1.String(), q2.String())
		}
	}
}

func TestVars(t *testing.T) {
	q := MustParse("q() :- R(x, y), S(y, z), x != w, T(w)")
	got := strings.Join(q.Vars(), ",")
	if got != "x,y,z,w" {
		t.Errorf("Vars = %s", got)
	}
}
