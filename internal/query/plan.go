package query

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// This file is the compiled evaluation engine. A query is compiled once
// per (query, schema set) into a Plan: the greedy join order is fixed,
// every atom's bound/free column split is precomputed, constants are
// pre-normalized to their column kinds, variables are renumbered to
// integer slots into a flat value array (no map binding), repeated
// variables become index pairs checked in place, and every comparison
// and negated atom is pushed down to the earliest join depth at which
// all of its variables are bound — so each condition is checked exactly
// once per binding prefix instead of being re-derived and re-checked at
// every depth, as the interpreted evaluator (interp.go) does.
//
// The per-world runtime state lives in a Scratch that callers reuse
// across evaluations: slot array, per-depth index-key buffers, and
// per-depth probe closures. With warm view indexes the hot loop
// allocates nothing — index keys are built into reusable buffers and
// probed with the non-allocating map[string(buf)] form.

// keyPart is one column of an index-lookup or negation key: either a
// pre-normalized constant or a slot whose runtime value is normalized
// to the column kind before encoding.
type keyPart struct {
	col  int
	slot int         // -1 for constants
	cval value.Value // normalized constant, when slot == -1
	kind value.Kind  // column kind, for runtime slot-value normalization
	src  Term        // source term, for Explain
}

// slotCol records that a step binds tuple column col into slot.
type slotCol struct{ col, slot int }

// compiledCmp is a comparison with its terms resolved to slots or
// constants at compile time.
type compiledCmp struct {
	op             CmpOp
	lSlot, rSlot   int // -1 when the side is a constant
	lConst, rConst value.Value
	src            Comparison
}

// compiledNeg is a negated atom whose full-tuple key is assembled from
// parts (all columns, in order) and probed with View.ContainsKey.
type compiledNeg struct {
	rel   string
	parts []keyPart
	src   Atom
}

// planStep is one positive atom in join order.
type planStep struct {
	rel       string
	boundCols []int     // columns with a constant or an earlier-bound var
	key       []keyPart // index-key recipe, parallel to boundCols
	outSlots  []slotCol // free columns written into slots
	eqChecks  [][2]int  // repeated-variable positions that must agree
	cmps      []compiledCmp
	negs      []compiledNeg
	src       Atom
}

// Plan is a compiled query. Plans are immutable after Compile and safe
// for concurrent use; per-evaluation state lives in a Scratch.
type Plan struct {
	q          *Query
	relNames   []string // distinct relations referenced, any order
	schemas    []*relation.Schema
	slotNames  []string // slot -> variable name
	slotOf     map[string]int
	steps      []planStep
	stepRelIdx []int         // per step: index of its relation in relNames
	preNegs    []compiledNeg // ground negations, tested once per run
	headSlots  []int         // HeadVars -> slots (-1 if unbound)
	aggSlots   []int         // Agg.Vars -> slots (-1 if unbound)
	deltaOK    bool          // EvalDelta applies: no aggregate, no negation

	// unsatCmp: a comparison references a variable no positive atom
	// binds, or a constant comparison is false — no assignment can ever
	// satisfy the body. unsatNeg is the same for negated atoms, but only
	// applies when negation is checked (Assignments may skip it).
	unsatCmp bool
	unsatNeg bool

	// Explain-only records.
	droppedNegs []Atom       // negations that can never match (bad constant)
	foldedCmps  []Comparison // constant comparisons folded to true
	deadConds   []string     // reasons the plan is unsatisfiable
}

// greedyOrder orders positive atoms: at each step pick the atom with
// the most bound argument positions (constants plus variables bound by
// earlier atoms); ties broken by smaller relation cardinality. Atoms
// with no bound positions come as late as possible, so scans are
// replaced by indexed lookups wherever the join graph allows.
func greedyOrder(pos []Atom, v relation.View) []int {
	n := len(pos)
	order := make([]int, 0, n)
	used := make([]bool, n)
	boundVars := make(map[string]bool)
	for len(order) < n {
		best, bestScore, bestCount := -1, -1, 0
		for i, a := range pos {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if !t.IsVar() || boundVars[t.Var] {
					score++
				}
			}
			count := v.Count(a.Rel)
			if score > bestScore || (score == bestScore && count < bestCount) {
				best, bestScore, bestCount = i, score, count
			}
		}
		used[best] = true
		order = append(order, best)
		for _, t := range pos[best].Args {
			if t.IsVar() {
				boundVars[t.Var] = true
			}
		}
	}
	return order
}

// Compile builds a Plan for the query against the view's schemas. The
// join order additionally consults the view's current cardinalities,
// which affects performance, never results: a plan compiled against one
// view is correct for any view with the same schemas.
func Compile(q *Query, v relation.View) (*Plan, error) {
	start := time.Now()
	if err := q.CheckAgainst(v); err != nil {
		return nil, err
	}
	p := &Plan{q: q, slotOf: make(map[string]int)}
	relIdx := make(map[string]int)
	for _, a := range q.Atoms {
		if _, ok := relIdx[a.Rel]; !ok {
			relIdx[a.Rel] = len(p.relNames)
			p.relNames = append(p.relNames, a.Rel)
			p.schemas = append(p.schemas, v.Schema(a.Rel))
		}
	}
	p.deltaOK = q.Agg == nil && len(q.Negatives()) == 0
	slot := func(name string) int {
		s, ok := p.slotOf[name]
		if !ok {
			s = len(p.slotNames)
			p.slotOf[name] = s
			p.slotNames = append(p.slotNames, name)
		}
		return s
	}

	pos := q.Positives()
	order := greedyOrder(pos, v)
	bindDepth := make(map[string]int) // var -> step depth that first binds it
	for depth, idx := range order {
		a := pos[idx]
		sc := v.Schema(a.Rel)
		st := planStep{rel: a.Rel, src: a}
		firstFree := make(map[string]int) // var -> first free position in this atom
		for i, t := range a.Args {
			kind := sc.Attrs[i].Kind
			if !t.IsVar() {
				st.boundCols = append(st.boundCols, i)
				st.key = append(st.key, keyPart{col: i, slot: -1, cval: sc.NormalizeValue(t.Const, i), kind: kind, src: t})
				continue
			}
			if d, ok := bindDepth[t.Var]; ok && d < depth {
				st.boundCols = append(st.boundCols, i)
				st.key = append(st.key, keyPart{col: i, slot: slot(t.Var), kind: kind, src: t})
				continue
			}
			if f, dup := firstFree[t.Var]; dup {
				st.eqChecks = append(st.eqChecks, [2]int{f, i})
				continue
			}
			firstFree[t.Var] = i
			bindDepth[t.Var] = depth
			st.outSlots = append(st.outSlots, slotCol{col: i, slot: slot(t.Var)})
		}
		p.steps = append(p.steps, st)
		p.stepRelIdx = append(p.stepRelIdx, relIdx[a.Rel])
	}

	// Push each comparison down to the earliest depth where both sides
	// are bound; fold constant comparisons now.
	for _, c := range q.Comparisons {
		cc := compiledCmp{op: c.Op, lSlot: -1, rSlot: -1, src: c}
		d, unbound := -1, false
		for _, side := range []struct {
			t  Term
			s  *int
			cv *value.Value
		}{{c.Left, &cc.lSlot, &cc.lConst}, {c.Right, &cc.rSlot, &cc.rConst}} {
			if !side.t.IsVar() {
				*side.cv = side.t.Const
				continue
			}
			bd, ok := bindDepth[side.t.Var]
			if !ok {
				unbound = true
				continue
			}
			*side.s = p.slotOf[side.t.Var]
			if bd > d {
				d = bd
			}
		}
		switch {
		case unbound:
			// No positive atom binds the variable: under the
			// interpreter's final-check semantics no assignment ever
			// satisfies the body.
			p.unsatCmp = true
			p.deadConds = append(p.deadConds, fmt.Sprintf("%s references an unbound variable", c))
		case d < 0:
			if cc.op.Eval(cc.lConst.Compare(cc.rConst)) {
				p.foldedCmps = append(p.foldedCmps, c)
			} else {
				p.unsatCmp = true
				p.deadConds = append(p.deadConds, fmt.Sprintf("%s is constant and false", c))
			}
		default:
			p.steps[d].cmps = append(p.steps[d].cmps, cc)
		}
	}

	// Push each negated atom down likewise. A constant that cannot be
	// normalized to its column kind can never occur in a stored tuple,
	// so the negation always holds and is dropped. Ground negations
	// (view-dependent, so not foldable at compile time) become per-run
	// "pre" checks.
	for _, a := range q.Negatives() {
		sc := v.Schema(a.Rel)
		cn := compiledNeg{rel: a.Rel, src: a}
		d, unbound, dropped := -1, false, false
		for i, t := range a.Args {
			kind := sc.Attrs[i].Kind
			if t.IsVar() {
				bd, ok := bindDepth[t.Var]
				if !ok {
					unbound = true
					continue
				}
				cn.parts = append(cn.parts, keyPart{col: i, slot: p.slotOf[t.Var], kind: kind, src: t})
				if bd > d {
					d = bd
				}
				continue
			}
			nc, ok := value.Normalize(t.Const, kind)
			if !ok {
				dropped = true
				continue
			}
			cn.parts = append(cn.parts, keyPart{col: i, slot: -1, cval: nc, kind: kind, src: t})
		}
		switch {
		case unbound:
			p.unsatNeg = true
			p.deadConds = append(p.deadConds, fmt.Sprintf("%s references an unbound variable", a))
		case dropped:
			p.droppedNegs = append(p.droppedNegs, a)
		case d < 0:
			p.preNegs = append(p.preNegs, cn)
		default:
			p.steps[d].negs = append(p.steps[d].negs, cn)
		}
	}

	slotOr := func(name string) int {
		if s, ok := p.slotOf[name]; ok {
			return s
		}
		return -1
	}
	for _, hv := range q.HeadVars {
		p.headSlots = append(p.headSlots, slotOr(hv))
	}
	if q.Agg != nil {
		for _, av := range q.Agg.Vars {
			p.aggSlots = append(p.aggSlots, slotOr(av))
		}
	}
	mCompileNs.Observe(time.Since(start).Nanoseconds())
	return p, nil
}

// Query returns the compiled query.
func (p *Plan) Query() *Query { return p.q }

// RelNames returns the distinct relations the plan probes, in the order
// EvalDelta's floors slice must follow. Callers must not mutate it.
func (p *Plan) RelNames() []string { return p.relNames }

// SupportsDelta reports whether EvalDelta is sound for this plan: the
// query has no aggregate and no negated atoms, so satisfaction is
// monotone in the view and a new satisfying assignment must touch at
// least one delta tuple.
func (p *Plan) SupportsDelta() bool { return p.deltaOK }

// valid reports whether the plan's schema snapshot matches the view.
// Schema pointers are stable across State.Clone and Overlay
// construction, so a plan compiled against a Monitor's state remains
// valid for every possible-world overlay of that state.
func (p *Plan) valid(v relation.View) bool {
	for i, rel := range p.relNames {
		if v.Schema(rel) != p.schemas[i] {
			return false
		}
	}
	return true
}

// OrderSummary renders the join order and condition placement in one
// line, e.g. "TxOut[1]>TxIn[4]+1c pre:1" — [n] is the number of bound
// key columns ("scan" when none), +Nc counts conditions checked at that
// step, and pre:N counts ground negations tested once per run.
func (p *Plan) OrderSummary() string {
	var b strings.Builder
	for i := range p.steps {
		st := &p.steps[i]
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(st.rel)
		if len(st.boundCols) > 0 {
			fmt.Fprintf(&b, "[%d]", len(st.boundCols))
		} else {
			b.WriteString("[scan]")
		}
		if n := len(st.cmps) + len(st.negs); n > 0 {
			fmt.Fprintf(&b, "+%dc", n)
		}
	}
	if len(p.preNegs) > 0 {
		fmt.Fprintf(&b, " pre:%d", len(p.preNegs))
	}
	if p.unsatCmp || p.unsatNeg {
		b.WriteString(" unsat")
	}
	return b.String()
}

// Scratch holds the reusable per-evaluation state for running compiled
// plans: the slot array, per-depth index-key buffers, and per-depth
// probe closures. A Scratch may be reused across plans and views but
// must not be shared between concurrent evaluations; parallel workers
// each own one.
type Scratch struct {
	plan    *Plan
	view    relation.View
	slots   []value.Value
	keyBufs [][]byte // per depth: LookupKey probes base then extra with recursion in between, so buffers cannot be shared across depths
	negBuf  []byte   // negation probes complete before any recursion
	try     []func(value.Tuple) bool
	yield   func() bool
	skipNeg bool
	proj    value.Tuple // aggregate projection, reused across assignments

	// Delta-evaluation window state (see delta.go). dv is nil for plain
	// Eval runs, keeping the windowed dispatch to a single pointer check
	// on the hot path. winModes/winFloors are per-depth.
	dv        DeltaView
	winModes  []uint8
	winFloors []int

	// Local instrument counts, flushed once per run.
	lookups int64
	scans   int64
	probes  int64

	// totalProbes survives flushes: the probe count accumulated over the
	// scratch's lifetime, harvested by the core layer for per-check cost
	// attribution.
	totalProbes int64
}

// NewScratch returns an empty Scratch; it grows to fit whatever plan it
// runs.
func NewScratch() *Scratch { return &Scratch{} }

// TotalProbes returns the tuple probes accumulated across every run
// this scratch has finished — the plan-probe term of a check's cost
// vector.
func (sc *Scratch) TotalProbes() int64 { return sc.totalProbes + sc.probes }

func (sc *Scratch) prepare(p *Plan, v relation.View, skipNeg bool, yield func() bool) {
	sc.plan, sc.view, sc.skipNeg, sc.yield = p, v, skipNeg, yield
	if n := len(p.slotNames); cap(sc.slots) >= n {
		sc.slots = sc.slots[:n]
	} else {
		sc.slots = make([]value.Value, n)
	}
	for len(sc.keyBufs) < len(p.steps) {
		sc.keyBufs = append(sc.keyBufs, nil)
	}
	for d := len(sc.try); d < len(p.steps); d++ {
		d := d
		sc.try = append(sc.try, func(tup value.Tuple) bool { return sc.tryTuple(d, tup) })
	}
}

// finish flushes metrics and drops references the scratch should not
// retain while pooled.
func (sc *Scratch) finish() {
	mEvals.Inc()
	mIndexLookups.Add(sc.lookups)
	mScans.Add(sc.scans)
	mTuplesProbed.Add(sc.probes)
	sc.totalProbes += sc.probes
	sc.lookups, sc.scans, sc.probes = 0, 0, 0
	sc.plan, sc.view, sc.yield = nil, nil, nil
	sc.dv = nil
}

// run enumerates satisfying assignments, invoking the prepared yield
// for each; yield returning false stops the enumeration.
func (sc *Scratch) run() {
	p := sc.plan
	if p.unsatCmp || (!sc.skipNeg && p.unsatNeg) {
		return
	}
	if !sc.skipNeg {
		for i := range p.preNegs {
			if !sc.negHolds(&p.preNegs[i]) {
				return
			}
		}
	}
	sc.step(0)
}

// step resolves the atom at the given depth through an index lookup on
// its precomputed bound columns, or a scan when none are bound; at the
// bottom every condition has already been checked, so it yields.
func (sc *Scratch) step(depth int) bool {
	p := sc.plan
	if depth == len(p.steps) {
		return sc.yield()
	}
	st := &p.steps[depth]
	if len(st.boundCols) == 0 {
		sc.scans++
		if sc.dv != nil {
			switch sc.winModes[depth] {
			case winBelow:
				return sc.dv.ScanBelow(st.rel, sc.winFloors[depth], sc.try[depth])
			case winFrom:
				return sc.dv.ScanFrom(st.rel, sc.winFloors[depth], sc.try[depth])
			}
		}
		return sc.view.Scan(st.rel, sc.try[depth])
	}
	sc.lookups++
	buf := sc.keyBufs[depth][:0]
	for i := range st.key {
		kp := &st.key[i]
		if kp.slot < 0 {
			buf = kp.cval.AppendKey(buf)
			continue
		}
		v := sc.slots[kp.slot]
		// Normalize the bound value to the column kind so the probe key
		// matches stored (normalized) tuples; an un-normalizable value
		// keeps its encoding and the probe naturally misses, matching
		// Schema.NormalizeValue's return-unchanged semantics.
		if nv, ok := value.Normalize(v, kp.kind); ok {
			v = nv
		}
		buf = v.AppendKey(buf)
	}
	sc.keyBufs[depth] = buf
	if sc.dv != nil {
		switch sc.winModes[depth] {
		case winBelow:
			return sc.dv.LookupKeyBelow(st.rel, st.boundCols, buf, sc.winFloors[depth], sc.try[depth])
		case winFrom:
			return sc.dv.LookupKeyFrom(st.rel, st.boundCols, buf, sc.winFloors[depth], sc.try[depth])
		}
	}
	return sc.view.LookupKey(st.rel, st.boundCols, buf, sc.try[depth])
}

// tryTuple processes one candidate tuple at a depth: repeated-variable
// agreement, slot writes, then the conditions pushed down to this
// depth, then recursion. Slots never need unwinding on backtrack: a
// slot is only read at depths where compilation guarantees the current
// path has written it.
func (sc *Scratch) tryTuple(depth int, tup value.Tuple) bool {
	sc.probes++
	st := &sc.plan.steps[depth]
	for _, eq := range st.eqChecks {
		if !tup[eq[0]].Equal(tup[eq[1]]) {
			return true // mismatch; keep scanning
		}
	}
	for _, out := range st.outSlots {
		sc.slots[out.slot] = tup[out.col]
	}
	for i := range st.cmps {
		c := &st.cmps[i]
		lv, rv := c.lConst, c.rConst
		if c.lSlot >= 0 {
			lv = sc.slots[c.lSlot]
		}
		if c.rSlot >= 0 {
			rv = sc.slots[c.rSlot]
		}
		if !c.op.Eval(lv.Compare(rv)) {
			return true
		}
	}
	if !sc.skipNeg {
		for i := range st.negs {
			if !sc.negHolds(&st.negs[i]) {
				return true
			}
		}
	}
	return sc.step(depth + 1)
}

// negHolds reports whether the negated atom's ground tuple is absent
// from the view. A bound value that cannot inhabit its column means the
// tuple cannot exist, so the negation holds.
func (sc *Scratch) negHolds(n *compiledNeg) bool {
	buf := sc.negBuf[:0]
	for i := range n.parts {
		kp := &n.parts[i]
		if kp.slot < 0 {
			buf = kp.cval.AppendKey(buf)
			continue
		}
		nv, ok := value.Normalize(sc.slots[kp.slot], kp.kind)
		if !ok {
			sc.negBuf = buf
			return true
		}
		buf = nv.AppendKey(buf)
	}
	sc.negBuf = buf
	return !sc.view.ContainsKey(n.rel, buf)
}

// slotOr returns the slot's current value, or Null for -1 (a head or
// aggregate variable no positive atom binds), matching the interpreted
// evaluator's missing-binding behavior.
func (sc *Scratch) slotOr(s int) value.Value {
	if s < 0 {
		return value.Null
	}
	return sc.slots[s]
}

// Eval runs the plan over the view using the scratch: for aggregate
// queries it folds the aggregate over all assignments, otherwise it
// reports whether any satisfying assignment exists.
func (p *Plan) Eval(v relation.View, sc *Scratch) (bool, error) {
	if p.q.Agg == nil {
		found := false
		sc.prepare(p, v, false, func() bool {
			found = true
			return false // stop at first satisfying assignment
		})
		sc.run()
		sc.finish()
		return found, nil
	}
	return p.aggregate(v, sc)
}

// aggregate folds the aggregate over the bag of head projections and
// applies the head comparison; an empty bag yields false, and monotone
// heads stop as soon as the threshold is reached (see the interpreted
// twin in interp.go).
func (p *Plan) aggregate(v relation.View, sc *Scratch) (bool, error) {
	h := p.q.Agg
	earlyOut := p.q.IsMonotonic()
	var (
		n        int64
		sumI     int64
		sumF     float64
		sawF     bool
		extreme  value.Value
		first    = true
		distinct map[string]bool
	)
	if h.Func == AggCntd {
		distinct = make(map[string]bool)
	}
	if cap(sc.proj) >= len(h.Vars) {
		sc.proj = sc.proj[:len(h.Vars)]
	} else {
		sc.proj = make(value.Tuple, len(h.Vars))
	}
	proj := sc.proj
	crossed := func(cur value.Value) bool { return h.Op.Eval(cur.Compare(h.Bound)) }
	stop := false
	sc.prepare(p, v, false, func() bool {
		for i, s := range p.aggSlots {
			proj[i] = sc.slotOr(s)
		}
		switch h.Func {
		case AggCount:
			n++
			if earlyOut && crossed(value.Int(n)) {
				stop = true
			}
		case AggCntd:
			distinct[proj.Key()] = true
			if earlyOut && crossed(value.Int(int64(len(distinct)))) {
				stop = true
			}
		case AggSum:
			v := proj[0]
			if v.Kind() == value.KindFloat || sawF {
				sawF = true
				sumF += v.AsFloat()
			} else if v.Kind() == value.KindInt {
				sumI += v.AsInt()
			} else {
				sawF = true
				sumF += v.AsFloat() // panics for non-numerics, as documented
			}
			if earlyOut && crossed(sumValue(sumI, sumF, sawF)) {
				stop = true
			}
		case AggMax:
			if first || proj[0].Compare(extreme) > 0 {
				extreme = proj[0]
			}
			if earlyOut && crossed(extreme) {
				stop = true
			}
		case AggMin:
			if first || proj[0].Compare(extreme) < 0 {
				extreme = proj[0]
			}
		}
		first = false
		return !stop
	})
	sc.run()
	sc.finish()
	if first {
		// Empty bag: false under the paper's chosen semantics.
		return false, nil
	}
	var result value.Value
	switch h.Func {
	case AggCount:
		result = value.Int(n)
	case AggCntd:
		result = value.Int(int64(len(distinct)))
	case AggSum:
		result = sumValue(sumI, sumF, sawF)
	case AggMax, AggMin:
		result = extreme
	default:
		return false, fmt.Errorf("query: unknown aggregate %q", h.Func)
	}
	return h.Op.Eval(result.Compare(h.Bound)), nil
}

// planCache maps queries (by identity — queries are compiled objects,
// not text, so pointer identity is the natural key) to their compiled
// plans. A cached plan is only reused when its schema snapshot still
// matches the view (see Plan.valid), so schema evolution or a different
// database simply recompiles.
var planCache = struct {
	sync.RWMutex
	m map[*Query]*Plan
}{m: make(map[*Query]*Plan)}

// planCacheCap bounds the cache; at the cap the whole map is dropped —
// the working set of live constraints is tiny and recompilation is
// microseconds, so eviction sophistication buys nothing.
const planCacheCap = 256

// PlanFor returns a compiled plan for the query against the view,
// caching by query identity. Safe for concurrent use.
func PlanFor(q *Query, v relation.View) (*Plan, error) {
	planCache.RLock()
	p := planCache.m[q]
	planCache.RUnlock()
	if p != nil && p.valid(v) {
		mPlanCacheHits.Inc()
		return p, nil
	}
	mPlanCacheMisses.Inc()
	p, err := Compile(q, v)
	if err != nil {
		return nil, err
	}
	planCache.Lock()
	if len(planCache.m) >= planCacheCap {
		clear(planCache.m)
	}
	planCache.m[q] = p
	planCache.Unlock()
	return p, nil
}
