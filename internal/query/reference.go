package query

import (
	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// EvalReference is a naive nested-loop evaluator with the same
// semantics as Eval. It performs no planning, no index lookups, and no
// early termination, deriving its answer from first principles:
// enumerate every combination of tuples for the positive atoms, keep
// the combinations that induce a consistent assignment satisfying all
// negated atoms and comparisons, and fold the aggregate over the
// surviving assignments. It exists to cross-validate Eval in tests and
// for the evaluator ablation benchmark; production code calls Eval.
func EvalReference(q *Query, v relation.View) (bool, error) {
	if err := q.CheckAgainst(v); err != nil {
		return false, err
	}
	pos := q.Positives()
	// Materialize candidate tuples per positive atom.
	choices := make([][]value.Tuple, len(pos))
	for i, a := range pos {
		v.Scan(a.Rel, func(t value.Tuple) bool {
			choices[i] = append(choices[i], t)
			return true
		})
	}
	var assignments []map[string]value.Value
	combo := make([]value.Tuple, len(pos))
	var rec func(i int)
	rec = func(i int) {
		if i == len(pos) {
			if b, ok := bindingOf(pos, combo, v, q); ok {
				assignments = append(assignments, b)
			}
			return
		}
		for _, t := range choices[i] {
			combo[i] = t
			rec(i + 1)
		}
	}
	rec(0)
	// Deduplicate assignments: distinct tuple combinations that induce
	// the same variable assignment are one element of H.
	byKey := make(map[string]map[string]value.Value)
	vars := q.Vars()
	for _, b := range assignments {
		var keyTuple value.Tuple
		for _, vn := range vars {
			keyTuple = append(keyTuple, b[vn])
		}
		byKey[keyTuple.Key()] = b
	}
	if q.Agg == nil {
		return len(byKey) > 0, nil
	}
	return referenceAggregate(q.Agg, byKey)
}

// bindingOf attempts to unify the atoms with the chosen tuples and
// check every condition; it returns the induced assignment on success.
func bindingOf(pos []Atom, combo []value.Tuple, v relation.View, q *Query) (map[string]value.Value, bool) {
	b := make(map[string]value.Value)
	for i, a := range pos {
		t := combo[i]
		for j, arg := range a.Args {
			if !arg.IsVar() {
				if !arg.Const.Equal(t[j]) {
					return nil, false
				}
				continue
			}
			if prev, ok := b[arg.Var]; ok {
				if !prev.Equal(t[j]) {
					return nil, false
				}
				continue
			}
			b[arg.Var] = t[j]
		}
	}
	for _, a := range q.Negatives() {
		tup := make(value.Tuple, len(a.Args))
		for j, arg := range a.Args {
			if arg.IsVar() {
				tup[j] = b[arg.Var]
			} else {
				tup[j] = arg.Const
			}
		}
		if v.Contains(a.Rel, tup) {
			return nil, false
		}
	}
	for _, c := range q.Comparisons {
		lv, rv := c.Left.Const, c.Right.Const
		if c.Left.IsVar() {
			lv = b[c.Left.Var]
		}
		if c.Right.IsVar() {
			rv = b[c.Right.Var]
		}
		if !c.Op.Eval(lv.Compare(rv)) {
			return nil, false
		}
	}
	return b, true
}

func referenceAggregate(h *AggHead, assignments map[string]map[string]value.Value) (bool, error) {
	if len(assignments) == 0 {
		return false, nil
	}
	var bag []value.Tuple
	for _, b := range assignments {
		proj := make(value.Tuple, len(h.Vars))
		for i, vn := range h.Vars {
			proj[i] = b[vn]
		}
		bag = append(bag, proj)
	}
	var result value.Value
	switch h.Func {
	case AggCount:
		result = value.Int(int64(len(bag)))
	case AggCntd:
		distinct := make(map[string]bool)
		for _, p := range bag {
			distinct[p.Key()] = true
		}
		result = value.Int(int64(len(distinct)))
	case AggSum:
		sum := 0.0
		allInt := true
		for _, p := range bag {
			if p[0].Kind() != value.KindInt {
				allInt = false
			}
			sum += p[0].AsFloat()
		}
		if allInt {
			result = value.Int(int64(sum))
		} else {
			result = value.Float(sum)
		}
	case AggMax:
		result = bag[0][0]
		for _, p := range bag[1:] {
			if p[0].Compare(result) > 0 {
				result = p[0]
			}
		}
	case AggMin:
		result = bag[0][0]
		for _, p := range bag[1:] {
			if p[0].Compare(result) < 0 {
				result = p[0]
			}
		}
	}
	return h.Op.Eval(result.Compare(h.Bound)), nil
}
