package query

// Simplify rewrites the query into an equivalent, usually cheaper form:
//
//   - constant⋈constant comparisons are folded away (a false one makes
//     the whole query unsatisfiable);
//   - x = c substitutes the constant into every occurrence of x
//     (enabling index lookups and the Covers filter), unless x is a
//     head or aggregate variable, which must remain variables;
//   - x = y merges the two variables (y is renamed to x everywhere,
//     including heads);
//   - trivially-true self-comparisons (x = x, x <= x, x >= x) are
//     dropped; trivially-false ones (x != x, x < x, x > x) make the
//     query unsatisfiable;
//   - duplicate atoms and comparisons are removed (set semantics makes
//     repeated identical atoms redundant).
//
// It returns the simplified query and false when the rewrite proved the
// query unsatisfiable on every database (the caller can then report a
// denial constraint as trivially satisfied). The input is not modified.
func Simplify(q *Query) (*Query, bool) {
	out := &Query{
		Name:     q.Name,
		HeadVars: append([]string(nil), q.HeadVars...),
		Atoms:    make([]Atom, len(q.Atoms)),
	}
	for i, a := range q.Atoms {
		out.Atoms[i] = Atom{Rel: a.Rel, Args: append([]Term(nil), a.Args...), Negated: a.Negated}
	}
	out.Comparisons = append(out.Comparisons, q.Comparisons...)
	if q.Agg != nil {
		agg := *q.Agg
		agg.Vars = append([]string(nil), q.Agg.Vars...)
		out.Agg = &agg
	}

	pinned := make(map[string]bool) // vars that must stay variables
	for _, v := range out.HeadVars {
		pinned[v] = true
	}
	if out.Agg != nil {
		for _, v := range out.Agg.Vars {
			pinned[v] = true
		}
	}

	// Iterate to a fixpoint: substitutions can expose new folds.
	for changed := true; changed; {
		changed = false
		kept := out.Comparisons[:0]
		for _, c := range out.Comparisons {
			switch {
			case !c.Left.IsVar() && !c.Right.IsVar():
				if !c.Op.Eval(c.Left.Const.Compare(c.Right.Const)) {
					return out, false
				}
				changed = true // drop a true constant comparison
			case c.Left.IsVar() && c.Right.IsVar() && c.Left.Var == c.Right.Var:
				switch c.Op {
				case OpEq, OpLe, OpGe:
					changed = true // x ⋈ x trivially true: drop
				default:
					return out, false // x != x, x < x, x > x
				}
			case c.Op == OpEq && c.Left.IsVar() && c.Right.IsVar():
				// Merge variables; prefer eliminating an unpinned one.
				from, to := c.Right, c.Left
				if pinned[from.Var] && !pinned[to.Var] {
					from, to = to, from
				}
				if pinned[from.Var] {
					// Both pinned: rename is still sound (the head
					// reports the shared value either way).
					substituteVar(out, from.Var, to)
					renamePinned(out, from.Var, to.Var)
					delete(pinned, from.Var)
					pinned[to.Var] = true
				} else {
					substituteVar(out, from.Var, to)
				}
				changed = true
			case c.Op == OpEq && (c.Left.IsVar() != c.Right.IsVar()):
				variable, constant := c.Left, c.Right
				if !variable.IsVar() {
					variable, constant = c.Right, c.Left
				}
				if pinned[variable.Var] {
					kept = append(kept, c)
					continue
				}
				substituteVar(out, variable.Var, constant)
				changed = true
			default:
				kept = append(kept, c)
			}
		}
		out.Comparisons = kept
	}
	dedup(out)
	return out, true
}

// substituteVar replaces every occurrence of the variable with the term
// in atoms and comparisons.
func substituteVar(q *Query, name string, t Term) {
	for ai := range q.Atoms {
		for i, arg := range q.Atoms[ai].Args {
			if arg.IsVar() && arg.Var == name {
				q.Atoms[ai].Args[i] = t
			}
		}
	}
	for ci := range q.Comparisons {
		if q.Comparisons[ci].Left.IsVar() && q.Comparisons[ci].Left.Var == name {
			q.Comparisons[ci].Left = t
		}
		if q.Comparisons[ci].Right.IsVar() && q.Comparisons[ci].Right.Var == name {
			q.Comparisons[ci].Right = t
		}
	}
}

// renamePinned updates head and aggregate variable lists after a merge.
func renamePinned(q *Query, from, to string) {
	for i, v := range q.HeadVars {
		if v == from {
			q.HeadVars[i] = to
		}
	}
	if q.Agg != nil {
		for i, v := range q.Agg.Vars {
			if v == from {
				q.Agg.Vars[i] = to
			}
		}
	}
}

// dedup removes duplicate atoms (same relation, polarity, and argument
// list) and duplicate comparisons.
func dedup(q *Query) {
	seenAtoms := make(map[string]bool, len(q.Atoms))
	atoms := q.Atoms[:0]
	for _, a := range q.Atoms {
		key := a.String()
		if seenAtoms[key] {
			continue
		}
		seenAtoms[key] = true
		atoms = append(atoms, a)
	}
	q.Atoms = atoms
	seenCmp := make(map[string]bool, len(q.Comparisons))
	cmps := q.Comparisons[:0]
	for _, c := range q.Comparisons {
		key := c.String()
		if seenCmp[key] {
			continue
		}
		seenCmp[key] = true
		cmps = append(cmps, c)
	}
	q.Comparisons = cmps
}
