package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"blockchaindb/internal/value"
)

func TestSimplifyConstFolding(t *testing.T) {
	q := MustParse("q() :- R(x, y), 1 < 2, 'a' = 'a'")
	s, sat := Simplify(q)
	if !sat {
		t.Fatal("satisfiable query reported unsatisfiable")
	}
	if len(s.Comparisons) != 0 {
		t.Errorf("constant comparisons not folded: %v", s.Comparisons)
	}
	qf := MustParse("q() :- R(x, y), 2 < 1")
	if _, sat := Simplify(qf); sat {
		t.Error("false constant comparison not detected")
	}
	qx := MustParse("q() :- R(x, y), x != x")
	if _, sat := Simplify(qx); sat {
		t.Error("x != x not detected as unsatisfiable")
	}
	qt := MustParse("q() :- R(x, y), x = x, x <= x, x >= x")
	st, sat := Simplify(qt)
	if !sat || len(st.Comparisons) != 0 {
		t.Errorf("trivial self-comparisons not dropped: %v", st.Comparisons)
	}
}

func TestSimplifyConstantSubstitution(t *testing.T) {
	q := MustParse("q() :- R(x, y), x = 3, y < 5")
	s, sat := Simplify(q)
	if !sat {
		t.Fatal("unexpected unsat")
	}
	if !strings.Contains(s.String(), "R(3, y)") {
		t.Errorf("constant not pushed into atom: %s", s)
	}
	if len(s.Comparisons) != 1 || s.Comparisons[0].String() != "y < 5" {
		t.Errorf("comparisons = %v", s.Comparisons)
	}
	// Chained: x = 3 and y = x ⇒ both positions constant.
	q2 := MustParse("q() :- R(x, y), x = 3, y = x")
	s2, _ := Simplify(q2)
	if !strings.Contains(s2.String(), "R(3, 3)") {
		t.Errorf("chained substitution failed: %s", s2)
	}
	// Contradictory constants: x = 3, x = 4.
	q3 := MustParse("q() :- R(x, y), x = 3, x = 4")
	if _, sat := Simplify(q3); sat {
		t.Error("contradictory bindings not detected")
	}
}

func TestSimplifyVariableMerge(t *testing.T) {
	q := MustParse("q() :- R(x, a), S(y, b), x = y")
	s, _ := Simplify(q)
	if len(s.Comparisons) != 0 {
		t.Errorf("merge left a comparison: %v", s.Comparisons)
	}
	// Both atoms now share one variable.
	vars := s.Vars()
	count := 0
	for _, v := range vars {
		if v == "x" || v == "y" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("variables after merge: %v", vars)
	}
}

func TestSimplifyPinnedVariables(t *testing.T) {
	// A head variable must not be replaced by a constant.
	q := MustParse("q(x) :- R(x, y), x = 3")
	s, sat := Simplify(q)
	if !sat {
		t.Fatal("unexpected unsat")
	}
	if len(s.HeadVars) != 1 {
		t.Fatalf("head vars lost: %v", s.HeadVars)
	}
	if len(s.Comparisons) != 1 {
		t.Errorf("pinned comparison dropped: %s", s)
	}
	// Aggregate variables are pinned too.
	qa := MustParse("q(sum(a)) > 5 :- R(a, b), a = 2")
	sa, _ := Simplify(qa)
	if len(sa.Agg.Vars) != 1 || sa.Agg.Vars[0] != "a" {
		t.Errorf("aggregate var lost: %+v", sa.Agg)
	}
	// Merging two head variables renames consistently.
	qh := MustParse("q(x, y) :- R(x, y), x = y")
	sh, _ := Simplify(qh)
	if len(sh.HeadVars) != 2 || sh.HeadVars[0] != sh.HeadVars[1] {
		t.Errorf("merged head vars: %v", sh.HeadVars)
	}
	if err := sh.Validate(); err != nil {
		t.Errorf("simplified head query invalid: %v", err)
	}
}

func TestSimplifyDedup(t *testing.T) {
	q := MustParse("q() :- R(x, y), R(x, y), !S(x), !S(x), x < 5, x < 5")
	s, _ := Simplify(q)
	if len(s.Atoms) != 2 || len(s.Comparisons) != 1 {
		t.Errorf("dedup failed: %s", s)
	}
}

func TestSimplifyDoesNotMutateInput(t *testing.T) {
	q := MustParse("q() :- R(x, y), x = 3")
	before := q.String()
	Simplify(q)
	if q.String() != before {
		t.Error("Simplify mutated its input")
	}
}

// TestSimplifyEquivalence is the semantic contract: on random databases
// the simplified query evaluates identically to the original.
func TestSimplifyEquivalence(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(r)
		q := randomQuery(r)
		// Inject extra equalities to give Simplify work.
		vars := q.Vars()
		for i, n := 0, r.Intn(3); i < n && len(vars) > 0; i++ {
			left := V(vars[r.Intn(len(vars))])
			var right Term
			if r.Intn(2) == 0 {
				right = C(value.Int(int64(r.Intn(3))))
			} else {
				right = V(vars[r.Intn(len(vars))])
			}
			q.Comparisons = append(q.Comparisons, Comparison{
				Left: left, Op: ops[r.Intn(len(ops))], Right: right})
		}
		if q.Validate() != nil {
			return true
		}
		simplified, sat := Simplify(q)
		origVal, err1 := Eval(q, s)
		if err1 != nil {
			t.Fatal(err1)
		}
		if !sat {
			// Proven unsatisfiable: the original must be false here.
			if origVal {
				t.Logf("seed %d: %s proven unsat but evaluates true", seed, q)
				return false
			}
			return true
		}
		if simplified.Validate() != nil {
			t.Logf("seed %d: simplified %s invalid", seed, simplified)
			return false
		}
		simpVal, err2 := Eval(simplified, s)
		if err2 != nil {
			t.Fatal(err2)
		}
		if origVal != simpVal {
			t.Logf("seed %d: %s -> %s: %v vs %v", seed, q, simplified, origVal, simpVal)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}
