package query

import (
	"sort"
	"strings"

	"blockchaindb/internal/value"
)

// EqualityConstraint is the paper's θ: an expression R[X̄] = S[Ȳ]
// stating that a tuple of Rel projected on Cols equals a tuple of
// RefRel projected on RefCols. Equality constraints drive the
// ind-q-transaction graph G^{q,ind}_T: two pending transactions are
// linked when some θ is satisfied by a tuple from each.
type EqualityConstraint struct {
	Rel     string
	Cols    []int
	RefRel  string
	RefCols []int
}

// String renders the constraint as "R[0,2] = S[1,3]".
func (e EqualityConstraint) String() string {
	var b strings.Builder
	b.WriteString(e.Rel)
	b.WriteString(idxList(e.Cols))
	b.WriteString(" = ")
	b.WriteString(e.RefRel)
	b.WriteString(idxList(e.RefCols))
	return b.String()
}

func idxList(cols []int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(c))
	}
	b.WriteByte(']')
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

// key returns a canonical form for deduplication.
func (e EqualityConstraint) key() string {
	return e.Rel + idxList(e.Cols) + "=" + e.RefRel + idxList(e.RefCols)
}

// EqualityConstraints computes Θ_q: for every pair of positive atoms
// R(x̄), S(ȳ), the maximal matching of argument positions whose terms
// are identical or implied equal by the query's '=' comparisons
// (identical constants count as equal terms). Pairs with no matching
// positions contribute nothing. The result is deduplicated.
func (q *Query) EqualityConstraints() []EqualityConstraint {
	classes := q.eqClasses()
	pos := q.Positives()
	seen := make(map[string]bool)
	var out []EqualityConstraint
	for ai := 0; ai < len(pos); ai++ {
		for bi := ai + 1; bi < len(pos); bi++ {
			a, b := pos[ai], pos[bi]
			cols, refCols := matchPositions(a, b, classes)
			if len(cols) == 0 {
				continue
			}
			e := EqualityConstraint{Rel: a.Rel, Cols: cols, RefRel: b.Rel, RefCols: refCols}
			if !seen[e.key()] {
				seen[e.key()] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// matchPositions greedily pairs argument positions of a with positions
// of b whose terms fall in the same equality class; each position is
// used at most once, and i-indexes ascend (the paper's maximal
// distinct-index sequences).
func matchPositions(a, b Atom, classes map[string]string) (cols, refCols []int) {
	usedJ := make(map[int]bool)
	for i, ta := range a.Args {
		ca := classes[termKey(ta)]
		for j, tb := range b.Args {
			if usedJ[j] {
				continue
			}
			if classes[termKey(tb)] == ca {
				cols = append(cols, i)
				refCols = append(refCols, j)
				usedJ[j] = true
				break
			}
		}
	}
	return cols, refCols
}

// AtomPair is an equality constraint between two specific positive
// atoms (indexes into Positives()): assignments must map them to tuples
// agreeing on the matched argument positions. Unlike
// EqualityConstraints, pairs are not deduplicated across atoms, so
// callers can apply per-atom constant filters.
type AtomPair struct {
	I, J    int
	Cols    []int // positions in atom I
	RefCols []int // positions in atom J
}

// AtomPairs computes the Θ_q constraints at atom granularity: for every
// pair of positive atoms with terms identical or implied equal by '='
// comparisons, the matched position lists. Pairs with no matches are
// omitted.
func (q *Query) AtomPairs() []AtomPair {
	classes := q.eqClasses()
	pos := q.Positives()
	var out []AtomPair
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			cols, refCols := matchPositions(pos[i], pos[j], classes)
			if len(cols) == 0 {
				continue
			}
			out = append(out, AtomPair{I: i, J: j, Cols: cols, RefCols: refCols})
		}
	}
	return out
}

// AtomConstants returns the argument positions of the atom that hold
// constants, in ascending order, together with those constant values.
// Callers implementing the paper's Covers test must normalize the
// values to the relation's column kinds before comparing projections
// (see relation.Schema.NormalizeValue).
func AtomConstants(a Atom) (cols []int, consts value.Tuple) {
	for i, t := range a.Args {
		if !t.IsVar() {
			cols = append(cols, i)
			consts = append(consts, t.Const)
		}
	}
	sort.Ints(cols) // already ascending by construction, but be explicit
	return cols, consts
}
