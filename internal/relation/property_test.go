package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"blockchaindb/internal/value"
)

// TestOverlayEquivalentToMaterialized: every View operation on an
// overlay must agree with the same operation on the materialized union
// — the core guarantee that lets possible worlds be evaluated without
// copying the state.
func TestOverlayEquivalentToMaterialized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := NewState()
		base.MustAddSchema(NewSchema("R", "a:int", "b:int"))
		base.MustAddSchema(NewSchema("S", "a:int"))
		for i, n := 0, r.Intn(8); i < n; i++ {
			base.MustInsert("R", value.NewTuple(value.Int(int64(r.Intn(4))), value.Int(int64(r.Intn(4)))))
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			base.MustInsert("S", value.NewTuple(value.Int(int64(r.Intn(4)))))
		}
		var txs []*Transaction
		for i, n := 0, r.Intn(3); i < n; i++ {
			tx := NewTransaction(fmt.Sprintf("T%d", i))
			for j, m := 0, 1+r.Intn(3); j < m; j++ {
				tx.Add("R", value.NewTuple(value.Int(int64(r.Intn(4))), value.Int(int64(r.Intn(4)))))
			}
			txs = append(txs, tx)
		}
		overlay := NewOverlay(base, txs...)
		materialized := overlay.Materialize()

		for _, rel := range []string{"R", "S"} {
			if overlay.Count(rel) != materialized.Count(rel) {
				t.Logf("seed %d: Count(%s) overlay %d, materialized %d",
					seed, rel, overlay.Count(rel), materialized.Count(rel))
				return false
			}
			// Scan sets agree.
			scanSet := func(v View) map[string]bool {
				out := map[string]bool{}
				v.Scan(rel, func(tp value.Tuple) bool {
					out[tp.Key()] = true
					return true
				})
				return out
			}
			a, b := scanSet(overlay), scanSet(materialized)
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
		}
		// Contains and Lookup agree on random probes.
		for i := 0; i < 10; i++ {
			probe := value.NewTuple(value.Int(int64(r.Intn(5))), value.Int(int64(r.Intn(5))))
			if overlay.Contains("R", probe) != materialized.Contains("R", probe) {
				return false
			}
			key := value.NewTuple(value.Int(int64(r.Intn(5)))).Key()
			count := func(v View) int {
				n := 0
				v.Lookup("R", []int{0}, key, func(value.Tuple) bool {
					n++
					return true
				})
				return n
			}
			if count(overlay) != count(materialized) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeProperty: Normalize is idempotent and preserves
// Compare-equality.
func TestNormalizeProperty(t *testing.T) {
	sc := NewSchema("R", "i:int", "f:float", "s:string", "any")
	f := func(a int64, b float64, s string) bool {
		if b != b || b > 1e15 || b < -1e15 {
			return true // NaN / out of lossless int range: not coercible anyway
		}
		tup := value.NewTuple(value.Int(a), value.Float(float64(a)), value.Str(s), value.Int(a))
		_ = b
		once, err := sc.Normalize(tup)
		if err != nil {
			return false
		}
		twice, err := sc.Normalize(once)
		if err != nil {
			return false
		}
		if !once.Equal(twice) {
			return false
		}
		// Normalization preserves value equality position-wise.
		for i := range tup {
			if !tup[i].Equal(once[i]) {
				return false
			}
		}
		// Float column got a float, int column kept int.
		return once[0].Kind() == value.KindInt && once[1].Kind() == value.KindFloat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
