package relation

import (
	"sync"

	"blockchaindb/internal/value"
)

// Relation is a set of tuples over a schema, with optional hash indexes
// over column sets. Insertion preserves set semantics: duplicate tuples
// are ignored. Tuples keep their insertion order for deterministic
// iteration.
//
// Reads — including the lazy index build on first Lookup — are safe
// from concurrent goroutines; the parallel DCSat workers and concurrent
// Monitor checks all evaluate queries over shared relations. Mutation
// (Insert) still requires external exclusion against readers.
type Relation struct {
	schema  *Schema
	tuples  []value.Tuple
	byKey   map[string]int // full-tuple key -> position in tuples
	keyBuf  []byte         // reusable key-encoding buffer for Insert
	idxMu   sync.RWMutex
	idxList []*hashIndex // a relation accumulates a handful at most
}

type hashIndex struct {
	cols    []int
	buckets map[string][]int // projection key -> positions
}

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{
		schema: schema,
		byKey:  make(map[string]int),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// At returns the i-th tuple in insertion order.
func (r *Relation) At(i int) value.Tuple { return r.tuples[i] }

// Insert adds the tuple, returning false if an identical tuple is
// already present. The tuple is validated against the schema and
// numeric values are normalized to the declared column kinds; an
// invalid tuple returns an error.
func (r *Relation) Insert(t value.Tuple) (bool, error) {
	t, err := r.schema.Normalize(t)
	if err != nil {
		return false, err
	}
	r.keyBuf = t.AppendKey(r.keyBuf[:0])
	return r.insertNormalized(t, r.keyBuf), nil
}

// insertNormalized adds an already-normalized tuple given its key
// encoding. The duplicate check probes with the non-allocating
// map[string(key)] form, so a re-inserted tuple (the common case when
// overlays refill from pending transactions) costs no allocation; only
// an actual insert materializes key strings.
func (r *Relation) insertNormalized(t value.Tuple, key []byte) bool {
	if _, dup := r.byKey[string(key)]; dup {
		return false
	}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.byKey[string(key)] = pos
	for _, idx := range r.idxList {
		pk := t.ProjectKey(idx.cols)
		idx.buckets[pk] = append(idx.buckets[pk], pos)
	}
	return true
}

// MustInsert is Insert but panics on schema violation; for internal
// callers that construct tuples programmatically.
func (r *Relation) MustInsert(t value.Tuple) bool {
	ok, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// Contains reports whether an identical tuple (after normalization) is
// present.
func (r *Relation) Contains(t value.Tuple) bool {
	nt, err := r.schema.Normalize(t)
	if err != nil {
		return false
	}
	_, ok := r.byKey[nt.Key()]
	return ok
}

// ContainsKey reports whether a tuple with the given full-tuple key
// encoding (value.Tuple.AppendKey of an already-normalized tuple) is
// present. The map[string(key)] form makes the probe allocation-free.
func (r *Relation) ContainsKey(key []byte) bool {
	_, ok := r.byKey[string(key)]
	return ok
}

// indexFor returns the hash index over the column set, building it once
// on first use. Resolving an existing index is a linear scan over the
// handful of indexes a relation ever accumulates, so — unlike a
// signature-string map — the hot-path probe allocates nothing.
// Concurrent callers are safe: the first one in builds, the rest wait
// and reuse it.
func (r *Relation) indexFor(cols []int) *hashIndex {
	r.idxMu.RLock()
	for _, idx := range r.idxList {
		if equalCols(idx.cols, cols) {
			r.idxMu.RUnlock()
			return idx
		}
	}
	r.idxMu.RUnlock()
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	for _, idx := range r.idxList {
		if equalCols(idx.cols, cols) {
			return idx
		}
	}
	idx := &hashIndex{cols: append([]int(nil), cols...), buckets: make(map[string][]int)}
	var buf []byte
	for pos, t := range r.tuples {
		buf = t.AppendProjectKey(buf[:0], idx.cols)
		idx.buckets[string(buf)] = append(idx.buckets[string(buf)], pos)
	}
	r.idxList = append(r.idxList, idx)
	return idx
}

func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EnsureIndex builds (once) a hash index over the column set and
// returns its signature for use with Lookup.
func (r *Relation) EnsureIndex(cols []int) string {
	r.indexFor(cols)
	return colSignature(cols)
}

// Lookup returns the positions of tuples whose projection on cols has
// the given key. It builds the index on first use. The returned slice
// must not be modified.
func (r *Relation) Lookup(cols []int, projKey string) []int {
	return r.indexFor(cols).buckets[projKey]
}

// LookupTuples iterates the tuples matching the projection key, calling
// f for each; f returning false stops iteration early. It reports
// whether iteration ran to completion.
func (r *Relation) LookupTuples(cols []int, projKey string, f func(value.Tuple) bool) bool {
	for _, pos := range r.Lookup(cols, projKey) {
		if !f(r.tuples[pos]) {
			return false
		}
	}
	return true
}

// LookupTuplesKey is LookupTuples with the projection key supplied as a
// byte buffer (value.Tuple.AppendProjectKey encoding); the
// map[string(key)] probe form keeps the per-probe path allocation-free.
func (r *Relation) LookupTuplesKey(cols []int, projKey []byte, f func(value.Tuple) bool) bool {
	idx := r.indexFor(cols)
	for _, pos := range idx.buckets[string(projKey)] {
		if !f(r.tuples[pos]) {
			return false
		}
	}
	return true
}

// Scan iterates all tuples in insertion order; f returning false stops
// early. It reports whether iteration ran to completion.
func (r *Relation) Scan(f func(value.Tuple) bool) bool {
	for _, t := range r.tuples {
		if !f(t) {
			return false
		}
	}
	return true
}

// ScanRange iterates the tuples at positions [lo, hi) in insertion
// order; f returning false stops early. It reports whether iteration
// ran to completion. Out-of-range bounds are clamped. Together with
// Truncate this is what lets an overlay expose "tuples before/after an
// undo mark" windows without copying anything.
func (r *Relation) ScanRange(lo, hi int, f func(value.Tuple) bool) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.tuples) {
		hi = len(r.tuples)
	}
	for ; lo < hi; lo++ {
		if !f(r.tuples[lo]) {
			return false
		}
	}
	return true
}

// LookupTuplesKeyRange is LookupTuplesKey restricted to tuples at
// positions [lo, hi). Index buckets hold positions in ascending order,
// so the probe skips the below-window prefix and stops at the first
// position past the window.
func (r *Relation) LookupTuplesKeyRange(cols []int, projKey []byte, lo, hi int, f func(value.Tuple) bool) bool {
	idx := r.indexFor(cols)
	for _, pos := range idx.buckets[string(projKey)] {
		if pos < lo {
			continue
		}
		if pos >= hi {
			break
		}
		if !f(r.tuples[pos]) {
			return false
		}
	}
	return true
}

// Truncate removes the tuples at positions n and above — the exact
// inverse of the inserts that appended them, undoing key-map entries
// and index postings as well. The cost is O(tuples removed × indexes),
// independent of the relation's size, which is what makes popping a
// transaction off an overlay's undo log cheap. Callers must exclude
// concurrent readers, as with Insert.
func (r *Relation) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(r.tuples) {
		return
	}
	r.idxMu.Lock()
	for _, idx := range r.idxList {
		// Walk positions high-to-low: a bucket's positions ascend, and
		// the highest live position overall is necessarily its bucket's
		// tail, so each removal pops a tail.
		for pos := len(r.tuples) - 1; pos >= n; pos-- {
			r.keyBuf = r.tuples[pos].AppendProjectKey(r.keyBuf[:0], idx.cols)
			b := idx.buckets[string(r.keyBuf)]
			idx.buckets[string(r.keyBuf)] = b[:len(b)-1]
		}
	}
	r.idxMu.Unlock()
	for pos := len(r.tuples) - 1; pos >= n; pos-- {
		r.keyBuf = r.tuples[pos].AppendKey(r.keyBuf[:0])
		delete(r.byKey, string(r.keyBuf))
		r.tuples[pos] = nil // release the tuple for GC
	}
	r.tuples = r.tuples[:n]
}

// Clear removes every tuple while keeping the schema, the key map's
// allocated buckets, and any built indexes (emptied in place), so a
// pooled relation refills without re-allocating its bookkeeping.
// Callers must exclude concurrent readers, as with Insert.
func (r *Relation) Clear() {
	r.tuples = r.tuples[:0]
	clear(r.byKey)
	r.idxMu.Lock()
	for _, idx := range r.idxList {
		clear(idx.buckets)
	}
	r.idxMu.Unlock()
}

// Clone returns a deep-enough copy: tuples are shared (they are
// immutable) but all bookkeeping is fresh, so inserts into the clone do
// not affect the original. Indexes are not copied; they rebuild lazily.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.schema)
	c.tuples = append([]value.Tuple(nil), r.tuples...)
	for k, v := range r.byKey {
		c.byKey[k] = v
	}
	return c
}
