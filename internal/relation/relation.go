package relation

import (
	"sync"

	"blockchaindb/internal/value"
)

// Relation is a set of tuples over a schema, with optional hash indexes
// over column sets. Insertion preserves set semantics: duplicate tuples
// are ignored. Tuples keep their insertion order for deterministic
// iteration.
//
// Reads — including the lazy index build on first Lookup — are safe
// from concurrent goroutines; the parallel DCSat workers and concurrent
// Monitor checks all evaluate queries over shared relations. Mutation
// (Insert) still requires external exclusion against readers.
type Relation struct {
	schema  *Schema
	tuples  []value.Tuple
	byKey   map[string]int // full-tuple key -> position in tuples
	idxMu   sync.RWMutex
	indexes map[string]*hashIndex // colSignature -> index
}

type hashIndex struct {
	cols    []int
	buckets map[string][]int // projection key -> positions
}

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{
		schema:  schema,
		byKey:   make(map[string]int),
		indexes: make(map[string]*hashIndex),
	}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// At returns the i-th tuple in insertion order.
func (r *Relation) At(i int) value.Tuple { return r.tuples[i] }

// Insert adds the tuple, returning false if an identical tuple is
// already present. The tuple is validated against the schema and
// numeric values are normalized to the declared column kinds; an
// invalid tuple returns an error.
func (r *Relation) Insert(t value.Tuple) (bool, error) {
	t, err := r.schema.Normalize(t)
	if err != nil {
		return false, err
	}
	key := t.Key()
	if _, dup := r.byKey[key]; dup {
		return false, nil
	}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.byKey[key] = pos
	for _, idx := range r.indexes {
		pk := t.ProjectKey(idx.cols)
		idx.buckets[pk] = append(idx.buckets[pk], pos)
	}
	return true, nil
}

// MustInsert is Insert but panics on schema violation; for internal
// callers that construct tuples programmatically.
func (r *Relation) MustInsert(t value.Tuple) bool {
	ok, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return ok
}

// Contains reports whether an identical tuple (after normalization) is
// present.
func (r *Relation) Contains(t value.Tuple) bool {
	nt, err := r.schema.Normalize(t)
	if err != nil {
		return false
	}
	_, ok := r.byKey[nt.Key()]
	return ok
}

// EnsureIndex builds (once) a hash index over the column set and
// returns its signature for use with Lookup. Concurrent callers are
// safe: the first one in builds, the rest wait and reuse it.
func (r *Relation) EnsureIndex(cols []int) string {
	sig := colSignature(cols)
	r.idxMu.RLock()
	_, ok := r.indexes[sig]
	r.idxMu.RUnlock()
	if ok {
		return sig
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if _, ok := r.indexes[sig]; ok {
		return sig
	}
	idx := &hashIndex{cols: append([]int(nil), cols...), buckets: make(map[string][]int)}
	for pos, t := range r.tuples {
		pk := t.ProjectKey(idx.cols)
		idx.buckets[pk] = append(idx.buckets[pk], pos)
	}
	r.indexes[sig] = idx
	return sig
}

// Lookup returns the positions of tuples whose projection on cols has
// the given key. It builds the index on first use. The returned slice
// must not be modified.
func (r *Relation) Lookup(cols []int, projKey string) []int {
	sig := r.EnsureIndex(cols)
	r.idxMu.RLock()
	idx := r.indexes[sig]
	r.idxMu.RUnlock()
	return idx.buckets[projKey]
}

// LookupTuples iterates the tuples matching the projection key, calling
// f for each; f returning false stops iteration early. It reports
// whether iteration ran to completion.
func (r *Relation) LookupTuples(cols []int, projKey string, f func(value.Tuple) bool) bool {
	for _, pos := range r.Lookup(cols, projKey) {
		if !f(r.tuples[pos]) {
			return false
		}
	}
	return true
}

// Scan iterates all tuples in insertion order; f returning false stops
// early. It reports whether iteration ran to completion.
func (r *Relation) Scan(f func(value.Tuple) bool) bool {
	for _, t := range r.tuples {
		if !f(t) {
			return false
		}
	}
	return true
}

// Clone returns a deep-enough copy: tuples are shared (they are
// immutable) but all bookkeeping is fresh, so inserts into the clone do
// not affect the original. Indexes are not copied; they rebuild lazily.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.schema)
	c.tuples = append([]value.Tuple(nil), r.tuples...)
	for k, v := range r.byKey {
		c.byKey[k] = v
	}
	return c
}
