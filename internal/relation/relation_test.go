package relation

import (
	"testing"

	"blockchaindb/internal/value"
)

func txOutSchema() *Schema {
	return NewSchema("TxOut", "txId:int", "ser:int", "pk:string", "amount:float")
}

func TestSchemaBasics(t *testing.T) {
	s := txOutSchema()
	if s.Arity() != 4 {
		t.Fatalf("Arity = %d", s.Arity())
	}
	if i, ok := s.Col("pk"); !ok || i != 2 {
		t.Errorf("Col(pk) = %d, %v", i, ok)
	}
	if _, ok := s.Col("nope"); ok {
		t.Error("Col(nope) should not exist")
	}
	if got := s.Cols("amount", "txId"); got[0] != 3 || got[1] != 0 {
		t.Errorf("Cols = %v", got)
	}
	if got := s.AllCols(); len(got) != 4 || got[3] != 3 {
		t.Errorf("AllCols = %v", got)
	}
	want := "TxOut(txId:int, ser:int, pk:string, amount:float)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestSchemaMustColPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	txOutSchema().MustCol("missing")
}

func TestNewSchemaBadKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSchema("R", "a:decimal")
}

func TestSchemaCheck(t *testing.T) {
	s := txOutSchema()
	ok := value.NewTuple(value.Int(1), value.Int(1), value.Str("pk"), value.Float(0.5))
	if err := s.Check(ok); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	// Numeric flexibility: int in a float column.
	okInt := value.NewTuple(value.Int(1), value.Int(1), value.Str("pk"), value.Int(1))
	if err := s.Check(okInt); err != nil {
		t.Errorf("int into float column rejected: %v", err)
	}
	// Nulls allowed anywhere.
	okNull := value.NewTuple(value.Null, value.Int(1), value.Str("pk"), value.Float(1))
	if err := s.Check(okNull); err != nil {
		t.Errorf("null rejected: %v", err)
	}
	bad := value.NewTuple(value.Int(1), value.Int(1), value.Int(7), value.Float(0.5))
	if err := s.Check(bad); err == nil {
		t.Error("int into string column accepted")
	}
	short := value.NewTuple(value.Int(1))
	if err := s.Check(short); err == nil {
		t.Error("wrong arity accepted")
	}
	anyS := NewSchema("S", "x") // untyped column
	if err := anyS.Check(value.NewTuple(value.Str("anything"))); err != nil {
		t.Errorf("untyped column rejected value: %v", err)
	}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation(txOutSchema())
	tup := value.NewTuple(value.Int(1), value.Int(1), value.Str("pk"), value.Float(1))
	if ins, err := r.Insert(tup); err != nil || !ins {
		t.Fatalf("first insert: %v %v", ins, err)
	}
	if ins, err := r.Insert(tup.Clone()); err != nil || ins {
		t.Fatalf("duplicate insert should be a no-op: %v %v", ins, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(tup) {
		t.Error("Contains lost the tuple")
	}
	if _, err := r.Insert(value.NewTuple(value.Int(1))); err == nil {
		t.Error("bad arity accepted")
	}
}

func TestRelationIndexMaintainedAcrossInserts(t *testing.T) {
	r := NewRelation(txOutSchema())
	pkCol := []int{2}
	// Build the index while empty, then insert: index must stay correct.
	r.EnsureIndex(pkCol)
	for i := 0; i < 10; i++ {
		pk := "A"
		if i%2 == 1 {
			pk = "B"
		}
		r.MustInsert(value.NewTuple(value.Int(int64(i)), value.Int(0), value.Str(pk), value.Float(1)))
	}
	key := value.NewTuple(value.Str("A")).Key()
	if got := len(r.Lookup(pkCol, key)); got != 5 {
		t.Errorf("Lookup(A) found %d tuples, want 5", got)
	}
	// Index built after inserts must agree.
	r2 := NewRelation(txOutSchema())
	r.Scan(func(t value.Tuple) bool { r2.MustInsert(t); return true })
	if got := len(r2.Lookup(pkCol, key)); got != 5 {
		t.Errorf("lazily built index found %d tuples, want 5", got)
	}
}

func TestRelationLookupTuplesEarlyStop(t *testing.T) {
	r := NewRelation(NewSchema("R", "a:int"))
	for i := 0; i < 5; i++ {
		r.MustInsert(value.NewTuple(value.Int(int64(i % 2))))
	}
	// Only 0 and 1 are distinct under set semantics.
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	n := 0
	completed := r.LookupTuples([]int{0}, value.NewTuple(value.Int(0)).Key(), func(value.Tuple) bool {
		n++
		return false
	})
	if completed || n != 1 {
		t.Errorf("early stop: completed=%v n=%d", completed, n)
	}
}

func TestRelationClone(t *testing.T) {
	r := NewRelation(NewSchema("R", "a:int"))
	r.MustInsert(value.NewTuple(value.Int(1)))
	c := r.Clone()
	c.MustInsert(value.NewTuple(value.Int(2)))
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: orig %d clone %d", r.Len(), c.Len())
	}
	if !c.Contains(value.NewTuple(value.Int(1))) {
		t.Error("clone lost original tuple")
	}
}

func TestStateBasics(t *testing.T) {
	s := NewState()
	s.MustAddSchema(txOutSchema())
	if err := s.AddSchema(txOutSchema()); err == nil {
		t.Error("duplicate schema accepted")
	}
	if s.Relation("TxOut") == nil || s.Relation("Nope") != nil {
		t.Error("Relation lookup wrong")
	}
	if s.Schema("TxOut") == nil || s.Schema("Nope") != nil {
		t.Error("Schema lookup wrong")
	}
	if _, err := s.Insert("Nope", value.NewTuple()); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	s.MustInsert("TxOut", value.NewTuple(value.Int(1), value.Int(1), value.Str("pk"), value.Float(1)))
	if s.Size() != 1 {
		t.Errorf("Size = %d", s.Size())
	}
}

func TestStateEqualAndFingerprint(t *testing.T) {
	mk := func(order []int64) *State {
		s := NewState()
		s.MustAddSchema(NewSchema("R", "a:int"))
		for _, v := range order {
			s.MustInsert("R", value.NewTuple(value.Int(v)))
		}
		return s
	}
	a := mk([]int64{1, 2, 3})
	b := mk([]int64{3, 1, 2})
	if !a.Equal(b) {
		t.Error("order-insensitive Equal failed")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprints should match regardless of insertion order")
	}
	c := mk([]int64{1, 2})
	if a.Equal(c) || a.Fingerprint() == c.Fingerprint() {
		t.Error("different contents compared equal")
	}
}

func TestStateClone(t *testing.T) {
	s := NewState()
	s.MustAddSchema(NewSchema("R", "a:int"))
	s.MustInsert("R", value.NewTuple(value.Int(1)))
	c := s.Clone()
	c.MustInsert("R", value.NewTuple(value.Int(2)))
	if s.Size() != 1 || c.Size() != 2 {
		t.Error("clone not independent")
	}
}

func TestTransaction(t *testing.T) {
	tx := NewTransaction("T1")
	tx.Add("R", value.NewTuple(value.Int(1))).
		Add("R", value.NewTuple(value.Int(1))). // dup ignored
		Add("S", value.NewTuple(value.Str("x")))
	if tx.Size() != 2 {
		t.Errorf("Size = %d", tx.Size())
	}
	if got := tx.Relations(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("Relations = %v", got)
	}
	if tx.String() != "T1" {
		t.Errorf("String = %q", tx.String())
	}
	anon := NewTransaction("")
	anon.Add("R", value.NewTuple(value.Int(9)))
	if anon.String() != "tx[1 tuples]" {
		t.Errorf("anon String = %q", anon.String())
	}
}

func TestTransactionSubsetOf(t *testing.T) {
	s := NewState()
	s.MustAddSchema(NewSchema("R", "a:int"))
	s.MustInsert("R", value.NewTuple(value.Int(1)))
	in := NewTransaction("in").Add("R", value.NewTuple(value.Int(1)))
	out := NewTransaction("out").Add("R", value.NewTuple(value.Int(2)))
	foreign := NewTransaction("f").Add("Unknown", value.NewTuple(value.Int(1)))
	if !in.SubsetOf(s) {
		t.Error("contained transaction reported not subset")
	}
	if out.SubsetOf(s) || foreign.SubsetOf(s) {
		t.Error("non-subset transaction reported subset")
	}
}

func TestStateInsertTransaction(t *testing.T) {
	s := NewState()
	s.MustAddSchema(NewSchema("R", "a:int"))
	tx := NewTransaction("T").Add("R", value.NewTuple(value.Int(5)))
	if err := s.InsertTransaction(tx); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("R", value.NewTuple(value.Int(5))) {
		t.Error("transaction tuple missing after insert")
	}
	bad := NewTransaction("B").Add("Missing", value.NewTuple(value.Int(1)))
	if err := s.InsertTransaction(bad); err == nil {
		t.Error("insert into unknown relation accepted")
	}
}
