// Package relation implements the in-memory relational storage layer
// that a blockchain database sits on: schemas, set-semantics relations
// with hash indexes, multi-relation states, insert transactions, and
// overlay views that expose "state ∪ pending transactions" without
// copying the state.
//
// The paper stores committed tuples in Postgres and marks candidate
// possible worlds by toggling a Boolean "current" column. This package
// replaces that mechanism with overlay views: a possible world is the
// base state plus a small overlay holding only the candidate pending
// transactions, which is cheaper to construct per world and needs no
// mutation of the base.
package relation

import (
	"fmt"
	"strconv"
	"strings"

	"blockchaindb/internal/value"
)

// Attribute is one named, typed column of a relation schema. A Kind of
// value.KindNull means the column accepts values of any kind.
type Attribute struct {
	Name string
	Kind value.Kind
}

// Schema describes a relation: its name and ordered attributes.
type Schema struct {
	Name  string
	Attrs []Attribute
}

// NewSchema builds a schema from "name:kind" column specs, where kind is
// one of int, float, string, bool, or any. It panics on a malformed
// spec; schemas are programmer-supplied, not user data.
func NewSchema(name string, cols ...string) *Schema {
	s := &Schema{Name: name}
	for _, c := range cols {
		parts := strings.SplitN(c, ":", 2)
		attr := Attribute{Name: parts[0], Kind: value.KindNull}
		if len(parts) == 2 {
			switch parts[1] {
			case "int":
				attr.Kind = value.KindInt
			case "float":
				attr.Kind = value.KindFloat
			case "string":
				attr.Kind = value.KindString
			case "bool":
				attr.Kind = value.KindBool
			case "any":
				attr.Kind = value.KindNull
			default:
				panic("relation: unknown column kind " + parts[1])
			}
		}
		s.Attrs = append(s.Attrs, attr)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// Col returns the index of the named attribute, or ok=false.
func (s *Schema) Col(name string) (int, bool) {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i, true
		}
	}
	return 0, false
}

// MustCol is Col but panics when the attribute does not exist.
func (s *Schema) MustCol(name string) int {
	i, ok := s.Col(name)
	if !ok {
		panic(fmt.Sprintf("relation: %s has no attribute %q", s.Name, name))
	}
	return i
}

// Cols resolves several attribute names to their indexes.
func (s *Schema) Cols(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.MustCol(n)
	}
	return out
}

// AllCols returns [0..arity).
func (s *Schema) AllCols() []int {
	out := make([]int, s.Arity())
	for i := range out {
		out[i] = i
	}
	return out
}

// Check validates that the tuple matches the schema's arity and column
// kinds (numeric columns accept both int and float).
func (s *Schema) Check(t value.Tuple) error {
	if len(t) != s.Arity() {
		return fmt.Errorf("relation %s: tuple arity %d, want %d", s.Name, len(t), s.Arity())
	}
	for i, a := range s.Attrs {
		if a.Kind == value.KindNull || t[i].IsNull() {
			continue
		}
		if t[i].Kind() == a.Kind {
			continue
		}
		if t[i].IsNumeric() && (a.Kind == value.KindInt || a.Kind == value.KindFloat) {
			continue
		}
		return fmt.Errorf("relation %s: column %s has kind %v, want %v",
			s.Name, a.Name, t[i].Kind(), a.Kind)
	}
	return nil
}

// Normalize validates the tuple against the schema and coerces numeric
// values to the declared column kinds (int into a float column becomes
// a float, and vice versa when integral), so that identical logical
// values always share one stored representation. It returns the
// normalized tuple — the input when no coercion was needed.
func (s *Schema) Normalize(t value.Tuple) (value.Tuple, error) {
	if err := s.Check(t); err != nil {
		return nil, err
	}
	out := t
	copied := false
	for i, a := range s.Attrs {
		nv, ok := value.Normalize(t[i], a.Kind)
		if !ok {
			return nil, fmt.Errorf("relation %s: column %s cannot hold %v", s.Name, a.Name, t[i])
		}
		if nv != t[i] {
			if !copied {
				out = t.Clone()
				copied = true
			}
			out[i] = nv
		}
	}
	return out, nil
}

// NormalizeValue coerces a single value to the kind of column col.
func (s *Schema) NormalizeValue(v value.Value, col int) value.Value {
	nv, ok := value.Normalize(v, s.Attrs[col].Kind)
	if !ok {
		return v
	}
	return nv
}

// String renders the schema as "Name(col:kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Kind != value.KindNull {
			b.WriteByte(':')
			b.WriteString(a.Kind.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// colSignature identifies an index over a column set.
func colSignature(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}
