package relation

import (
	"fmt"
	"sort"

	"blockchaindb/internal/value"
)

// State is a named collection of relations — the "set of relations R"
// of the paper, used both for the current (committed) state and for any
// other materialized set of relations.
type State struct {
	rels  map[string]*Relation
	names []string // deterministic iteration order
}

// NewState returns an empty state.
func NewState() *State {
	return &State{rels: make(map[string]*Relation)}
}

// AddSchema registers an empty relation for the schema. Registering a
// name twice is an error.
func (s *State) AddSchema(sc *Schema) error {
	if _, dup := s.rels[sc.Name]; dup {
		return fmt.Errorf("relation: duplicate schema %q", sc.Name)
	}
	s.rels[sc.Name] = NewRelation(sc)
	s.names = append(s.names, sc.Name)
	return nil
}

// MustAddSchema is AddSchema but panics on duplicates.
func (s *State) MustAddSchema(sc *Schema) {
	if err := s.AddSchema(sc); err != nil {
		panic(err)
	}
}

// Relation returns the named relation, or nil if unknown.
func (s *State) Relation(name string) *Relation { return s.rels[name] }

// Schema returns the named relation's schema, or nil.
func (s *State) Schema(name string) *Schema {
	if r := s.rels[name]; r != nil {
		return r.schema
	}
	return nil
}

// Names returns the relation names in registration order.
func (s *State) Names() []string { return s.names }

// Insert adds a tuple to the named relation.
func (s *State) Insert(rel string, t value.Tuple) (bool, error) {
	r := s.rels[rel]
	if r == nil {
		return false, fmt.Errorf("relation: unknown relation %q", rel)
	}
	return r.Insert(t)
}

// MustInsert is Insert but panics on error.
func (s *State) MustInsert(rel string, t value.Tuple) bool {
	ok, err := s.Insert(rel, t)
	if err != nil {
		panic(err)
	}
	return ok
}

// Size returns the total number of tuples across relations.
func (s *State) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Reset empties every relation in place, keeping schemas and the
// relations' allocated bookkeeping (see Relation.Clear), so a pooled
// state refills cheaply. Callers must exclude concurrent readers.
func (s *State) Reset() {
	for _, r := range s.rels {
		r.Clear()
	}
}

// Clone deep-copies the state (tuples shared, bookkeeping fresh).
func (s *State) Clone() *State {
	c := NewState()
	c.names = append([]string(nil), s.names...)
	for name, r := range s.rels {
		c.rels[name] = r.Clone()
	}
	return c
}

// InsertTransaction adds every tuple of the transaction (duplicates
// silently skipped, per set semantics).
func (s *State) InsertTransaction(t *Transaction) error {
	for _, rel := range t.Relations() {
		for _, tup := range t.Tuples(rel) {
			if _, err := s.Insert(rel, tup); err != nil {
				return err
			}
		}
	}
	return nil
}

// NormalizeTransaction returns a copy of the transaction whose tuples
// are validated against the state's schemas and normalized to the
// declared column kinds, so projections of transaction tuples compare
// consistently with stored tuples. The transaction name is preserved.
func (s *State) NormalizeTransaction(tx *Transaction) (*Transaction, error) {
	out := NewTransaction(tx.Name)
	for _, rel := range tx.Relations() {
		sc := s.Schema(rel)
		if sc == nil {
			return nil, fmt.Errorf("relation: transaction %s touches unknown relation %q", tx, rel)
		}
		for _, tup := range tx.Tuples(rel) {
			nt, err := sc.Normalize(tup)
			if err != nil {
				return nil, fmt.Errorf("relation: transaction %s: %w", tx, err)
			}
			out.Add(rel, nt)
		}
	}
	return out, nil
}

// Equal reports whether both states hold exactly the same tuples in the
// same relations (schemas compared by name).
func (s *State) Equal(o *State) bool {
	if len(s.rels) != len(o.rels) {
		return false
	}
	for name, r := range s.rels {
		or := o.rels[name]
		if or == nil || or.Len() != r.Len() {
			return false
		}
		same := r.Scan(func(t value.Tuple) bool { return or.Contains(t) })
		if !same {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the state's
// contents, independent of insertion order. Intended for tests and
// deduplication of possible worlds.
func (s *State) Fingerprint() string {
	var keys []string
	for name, r := range s.rels {
		r.Scan(func(t value.Tuple) bool {
			keys = append(keys, name+"\x00"+t.Key())
			return true
		})
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "\x01"
	}
	return out
}

// Transaction is an insert transaction: a named set of ground tuples
// for (some of) the relations of a state. Transactions are immutable
// once built via the builder methods.
type Transaction struct {
	Name   string
	tuples map[string][]value.Tuple
	order  []string // relation names in first-touch order
	size   int
}

// NewTransaction creates an empty transaction with the given name.
func NewTransaction(name string) *Transaction {
	return &Transaction{Name: name, tuples: make(map[string][]value.Tuple)}
}

// Add appends a tuple for the relation. Duplicate tuples within the
// transaction are kept out (set semantics).
func (t *Transaction) Add(rel string, tup value.Tuple) *Transaction {
	for _, existing := range t.tuples[rel] {
		if existing.Equal(tup) {
			return t
		}
	}
	if _, seen := t.tuples[rel]; !seen {
		t.order = append(t.order, rel)
	}
	t.tuples[rel] = append(t.tuples[rel], tup)
	t.size++
	return t
}

// Relations returns the relation names touched, in first-touch order.
func (t *Transaction) Relations() []string { return t.order }

// Tuples returns the tuples for a relation (nil if untouched). The
// returned slice must not be modified.
func (t *Transaction) Tuples(rel string) []value.Tuple { return t.tuples[rel] }

// Size returns the total number of tuples in the transaction.
func (t *Transaction) Size() int { return t.size }

// SubsetOf reports whether every tuple of the transaction is already
// present in the state.
func (t *Transaction) SubsetOf(s *State) bool {
	for _, rel := range t.order {
		r := s.Relation(rel)
		if r == nil {
			return false
		}
		for _, tup := range t.tuples[rel] {
			if !r.Contains(tup) {
				return false
			}
		}
	}
	return true
}

// String returns the transaction's name (or a placeholder).
func (t *Transaction) String() string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("tx[%d tuples]", t.size)
}
