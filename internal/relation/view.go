package relation

import "blockchaindb/internal/value"

// View is a read-only window over a set of relations. Both a plain
// State and an Overlay (state ∪ pending transactions) implement it;
// constraint checking and query evaluation operate on Views so they can
// examine candidate possible worlds without materializing them.
type View interface {
	// Schema returns the schema of the named relation, or nil.
	Schema(rel string) *Schema
	// Scan iterates every tuple of the relation; f returning false
	// stops early. It reports whether iteration ran to completion.
	Scan(rel string, f func(value.Tuple) bool) bool
	// Lookup iterates the tuples whose projection onto cols equals the
	// projection key (value.Tuple.ProjectKey encoding).
	Lookup(rel string, cols []int, projKey string, f func(value.Tuple) bool) bool
	// LookupKey is Lookup with the projection key as a byte buffer
	// (value.Tuple.AppendProjectKey encoding); implementations probe
	// with the non-allocating map[string(key)] form so hot loops can
	// reuse one buffer across probes.
	LookupKey(rel string, cols []int, projKey []byte, f func(value.Tuple) bool) bool
	// Contains reports whether the exact tuple is present.
	Contains(rel string, t value.Tuple) bool
	// ContainsKey reports whether a tuple with the given full-tuple key
	// encoding (value.Tuple.AppendKey of a schema-normalized tuple) is
	// present, without allocating.
	ContainsKey(rel string, key []byte) bool
	// Count returns the number of tuples in the relation.
	Count(rel string) int
	// Names returns all relation names.
	Names() []string
}

// Scan implements View for State.
func (s *State) Scan(rel string, f func(value.Tuple) bool) bool {
	r := s.rels[rel]
	if r == nil {
		return true
	}
	return r.Scan(f)
}

// Lookup implements View for State.
func (s *State) Lookup(rel string, cols []int, projKey string, f func(value.Tuple) bool) bool {
	r := s.rels[rel]
	if r == nil {
		return true
	}
	return r.LookupTuples(cols, projKey, f)
}

// LookupKey implements View for State.
func (s *State) LookupKey(rel string, cols []int, projKey []byte, f func(value.Tuple) bool) bool {
	r := s.rels[rel]
	if r == nil {
		return true
	}
	return r.LookupTuplesKey(cols, projKey, f)
}

// Contains implements View for State.
func (s *State) Contains(rel string, t value.Tuple) bool {
	r := s.rels[rel]
	return r != nil && r.Contains(t)
}

// ContainsKey implements View for State.
func (s *State) ContainsKey(rel string, key []byte) bool {
	r := s.rels[rel]
	return r != nil && r.ContainsKey(key)
}

// Count implements View for State.
func (s *State) Count(rel string) int {
	r := s.rels[rel]
	if r == nil {
		return 0
	}
	return r.Len()
}

// Overlay is the view "base ∪ transactions". Tuples of the overlaid
// transactions that already occur in the base are dropped at
// construction, so the overlay preserves set semantics: Scan visits
// each distinct tuple exactly once. Overlays are cheap: the base is
// shared, only the (small) pending tuples are copied into a fresh
// State whose indexes build lazily on first lookup.
type Overlay struct {
	base   *State
	extra  *State
	keyBuf []byte // reusable key-encoding buffer for Add
}

// NewOverlay builds the view base ∪ txs.
func NewOverlay(base *State, txs ...*Transaction) *Overlay {
	extra := NewState()
	for _, name := range base.Names() {
		extra.MustAddSchema(base.Schema(name))
	}
	o := &Overlay{base: base, extra: extra}
	for _, tx := range txs {
		o.Add(tx)
	}
	return o
}

// Add extends the overlay with another transaction's tuples (those not
// already in the base or the overlay). Indexes on the extra state are
// invalidated implicitly because State indexes are per-Relation and
// maintained on insert. Tuples are normalized before the base
// membership probe, so unnormalized duplicates of base tuples never
// leak into the overlay; the probe itself builds the key into a reused
// buffer, so re-adding pending transactions (already normalized by
// possible.New) allocates nothing.
func (o *Overlay) Add(tx *Transaction) {
	for _, rel := range tx.Relations() {
		r := o.extra.rels[rel]
		for _, tup := range tx.Tuples(rel) {
			if r == nil {
				o.extra.MustInsert(rel, tup) // unknown relation: surface the standard panic
				continue
			}
			nt, err := r.schema.Normalize(tup)
			if err != nil {
				panic(err)
			}
			o.keyBuf = nt.AppendKey(o.keyBuf[:0])
			if o.base.ContainsKey(rel, o.keyBuf) {
				continue
			}
			r.insertNormalized(nt, o.keyBuf)
		}
	}
}

// Base returns the underlying base state.
func (o *Overlay) Base() *State { return o.base }

// ExtraSize returns the number of overlay-only tuples.
func (o *Overlay) ExtraSize() int { return o.extra.Size() }

// Schema implements View.
func (o *Overlay) Schema(rel string) *Schema { return o.base.Schema(rel) }

// Names implements View.
func (o *Overlay) Names() []string { return o.base.Names() }

// Scan implements View: base tuples first, then overlay-only tuples.
func (o *Overlay) Scan(rel string, f func(value.Tuple) bool) bool {
	if !o.base.Scan(rel, f) {
		return false
	}
	return o.extra.Scan(rel, f)
}

// Lookup implements View.
func (o *Overlay) Lookup(rel string, cols []int, projKey string, f func(value.Tuple) bool) bool {
	if !o.base.Lookup(rel, cols, projKey, f) {
		return false
	}
	return o.extra.Lookup(rel, cols, projKey, f)
}

// LookupKey implements View.
func (o *Overlay) LookupKey(rel string, cols []int, projKey []byte, f func(value.Tuple) bool) bool {
	if !o.base.LookupKey(rel, cols, projKey, f) {
		return false
	}
	return o.extra.LookupKey(rel, cols, projKey, f)
}

// Contains implements View.
func (o *Overlay) Contains(rel string, t value.Tuple) bool {
	return o.base.Contains(rel, t) || o.extra.Contains(rel, t)
}

// ContainsKey implements View.
func (o *Overlay) ContainsKey(rel string, key []byte) bool {
	return o.base.ContainsKey(rel, key) || o.extra.ContainsKey(rel, key)
}

// Count implements View.
func (o *Overlay) Count(rel string) int {
	return o.base.Count(rel) + o.extra.Count(rel)
}

// Reset empties the overlay's extra tuples in place, retaining the
// allocated relations, key maps and indexes, so one Overlay can be
// reused across many candidate worlds over the same base. Callers must
// exclude concurrent readers.
func (o *Overlay) Reset() { o.extra.Reset() }

// Materialize copies the overlay into a standalone State.
func (o *Overlay) Materialize() *State {
	s := o.base.Clone()
	for _, name := range o.extra.Names() {
		o.extra.Scan(name, func(t value.Tuple) bool {
			s.MustInsert(name, t)
			return true
		})
	}
	return s
}

var (
	_ View = (*State)(nil)
	_ View = (*Overlay)(nil)
)
