package relation

import (
	"testing"

	"blockchaindb/internal/value"
)

func baseWithR(vals ...int64) *State {
	s := NewState()
	s.MustAddSchema(NewSchema("R", "a:int", "b:string"))
	for _, v := range vals {
		s.MustInsert("R", value.NewTuple(value.Int(v), value.Str("base")))
	}
	return s
}

func TestOverlayScanSetSemantics(t *testing.T) {
	base := baseWithR(1, 2)
	tx := NewTransaction("T").
		Add("R", value.NewTuple(value.Int(2), value.Str("base"))). // dup of base
		Add("R", value.NewTuple(value.Int(3), value.Str("tx")))
	o := NewOverlay(base, tx)
	var seen []int64
	o.Scan("R", func(tp value.Tuple) bool {
		seen = append(seen, tp[0].AsInt())
		return true
	})
	if len(seen) != 3 {
		t.Fatalf("scan saw %d tuples (%v), want 3 — base dup must not double-count", len(seen), seen)
	}
	if o.Count("R") != 3 {
		t.Errorf("Count = %d, want 3", o.Count("R"))
	}
	if o.ExtraSize() != 1 {
		t.Errorf("ExtraSize = %d, want 1", o.ExtraSize())
	}
}

func TestOverlayLookupAndContains(t *testing.T) {
	base := baseWithR(1)
	tx := NewTransaction("T").Add("R", value.NewTuple(value.Int(1), value.Str("tx")))
	o := NewOverlay(base, tx)
	key := value.NewTuple(value.Int(1)).Key()
	var got []string
	o.Lookup("R", []int{0}, key, func(tp value.Tuple) bool {
		got = append(got, tp[1].AsString())
		return true
	})
	if len(got) != 2 {
		t.Fatalf("Lookup found %d, want 2 (base + overlay)", len(got))
	}
	if !o.Contains("R", value.NewTuple(value.Int(1), value.Str("tx"))) {
		t.Error("Contains missed overlay tuple")
	}
	if !o.Contains("R", value.NewTuple(value.Int(1), value.Str("base"))) {
		t.Error("Contains missed base tuple")
	}
	if o.Contains("R", value.NewTuple(value.Int(9), value.Str("no"))) {
		t.Error("Contains invented a tuple")
	}
}

func TestOverlayDoesNotMutateBase(t *testing.T) {
	base := baseWithR(1)
	tx := NewTransaction("T").Add("R", value.NewTuple(value.Int(7), value.Str("tx")))
	o := NewOverlay(base, tx)
	if base.Count("R") != 1 {
		t.Fatalf("overlay construction mutated base: %d", base.Count("R"))
	}
	_ = o
}

func TestOverlayAddIncremental(t *testing.T) {
	base := baseWithR(1)
	o := NewOverlay(base)
	if o.Count("R") != 1 {
		t.Fatalf("empty overlay Count = %d", o.Count("R"))
	}
	o.Add(NewTransaction("T").Add("R", value.NewTuple(value.Int(2), value.Str("tx"))))
	if o.Count("R") != 2 {
		t.Errorf("after Add Count = %d", o.Count("R"))
	}
}

func TestOverlayMaterialize(t *testing.T) {
	base := baseWithR(1)
	tx := NewTransaction("T").Add("R", value.NewTuple(value.Int(2), value.Str("tx")))
	o := NewOverlay(base, tx)
	m := o.Materialize()
	if m.Count("R") != 2 {
		t.Fatalf("materialized Count = %d", m.Count("R"))
	}
	// Materialized state is independent of the base.
	m.MustInsert("R", value.NewTuple(value.Int(3), value.Str("x")))
	if base.Count("R") != 1 {
		t.Error("Materialize shares storage with base")
	}
}

func TestOverlayScanEarlyStop(t *testing.T) {
	base := baseWithR(1, 2, 3)
	o := NewOverlay(base, NewTransaction("T").Add("R", value.NewTuple(value.Int(4), value.Str("tx"))))
	n := 0
	completed := o.Scan("R", func(value.Tuple) bool {
		n++
		return n < 2
	})
	if completed || n != 2 {
		t.Errorf("early stop: completed=%v n=%d", completed, n)
	}
}

func TestViewOnUnknownRelation(t *testing.T) {
	base := baseWithR(1)
	o := NewOverlay(base)
	for _, v := range []View{base, o} {
		if !v.Scan("Unknown", func(value.Tuple) bool { return false }) {
			t.Error("Scan of unknown relation should complete vacuously")
		}
		if v.Count("Unknown") != 0 {
			t.Error("Count of unknown relation should be 0")
		}
		if v.Contains("Unknown", value.NewTuple()) {
			t.Error("Contains on unknown relation should be false")
		}
	}
}

func TestOverlayNames(t *testing.T) {
	base := baseWithR(1)
	o := NewOverlay(base)
	if n := o.Names(); len(n) != 1 || n[0] != "R" {
		t.Errorf("Names = %v", n)
	}
	if o.Base() != base {
		t.Error("Base() should return the wrapped state")
	}
	if o.Schema("R") == nil {
		t.Error("Schema(R) nil")
	}
}
