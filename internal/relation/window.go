package relation

import "blockchaindb/internal/value"

// This file is the overlay's undo log and its windowed read API — the
// relation-layer half of the incremental world evaluation along the
// Bron–Kerbosch recursion (see possible.WorldStack and DESIGN.md §15).
//
// An overlay mark is a snapshot of the extra state's per-relation
// tuple counts. Because Add only ever appends (set semantics drops
// duplicates, it never reorders), restoring a mark is a truncation:
// every relation cut back to its marked length, at a cost proportional
// to the tuples added since the mark — never to the world's size. Marks
// are strictly LIFO: popping to a mark invalidates every mark taken
// after it.
//
// The window probes split the same positional structure the other way:
// "below floor" is the overlay as it stood when the floor was recorded
// (base plus the first floor extra tuples), "from floor" is exactly the
// delta added since. query.Plan's delta re-probing uses them to pin
// join steps to old or new tuples.

// ExtraCount returns the number of overlay-only tuples of rel — the
// per-relation coordinate of a mark, and the floor value for the
// windowed probes.
func (o *Overlay) ExtraCount(rel string) int { return o.extra.Count(rel) }

// MarkLen returns the number of ints one mark occupies (one per
// relation); callers that pack marks into a shared backing slice size
// frames with it.
func (o *Overlay) MarkLen() int { return len(o.extra.names) }

// AppendMark appends the overlay's current undo mark — the extra-tuple
// count of every relation, in Names order — to buf and returns the
// extended slice. The mark is only meaningful against this overlay,
// and only until a PopToMark of an earlier mark.
func (o *Overlay) AppendMark(buf []int) []int {
	for _, name := range o.extra.names {
		buf = append(buf, o.extra.rels[name].Len())
	}
	return buf
}

// PopToMark undoes every Add since the matching AppendMark, truncating
// each extra relation to its marked length. mark must be the MarkLen
// ints AppendMark produced, and marks must be popped LIFO. Callers
// must exclude concurrent readers, as with Add.
func (o *Overlay) PopToMark(mark []int) {
	for i, name := range o.extra.names {
		o.extra.rels[name].Truncate(mark[i])
	}
}

// ScanBelow scans the pre-floor window: every base tuple, then the
// first floor overlay tuples of rel — the overlay exactly as it stood
// when the floor was recorded.
func (o *Overlay) ScanBelow(rel string, floor int, f func(value.Tuple) bool) bool {
	if !o.base.Scan(rel, f) {
		return false
	}
	r := o.extra.rels[rel]
	if r == nil {
		return true
	}
	return r.ScanRange(0, floor, f)
}

// ScanFrom scans the delta window only: overlay tuples of rel at
// positions floor and above. Base tuples are never part of a delta.
func (o *Overlay) ScanFrom(rel string, floor int, f func(value.Tuple) bool) bool {
	r := o.extra.rels[rel]
	if r == nil {
		return true
	}
	return r.ScanRange(floor, r.Len(), f)
}

// LookupKeyBelow is LookupKey restricted to the pre-floor window.
func (o *Overlay) LookupKeyBelow(rel string, cols []int, projKey []byte, floor int, f func(value.Tuple) bool) bool {
	if !o.base.LookupKey(rel, cols, projKey, f) {
		return false
	}
	r := o.extra.rels[rel]
	if r == nil {
		return true
	}
	return r.LookupTuplesKeyRange(cols, projKey, 0, floor, f)
}

// LookupKeyFrom is LookupKey restricted to the delta window.
func (o *Overlay) LookupKeyFrom(rel string, cols []int, projKey []byte, floor int, f func(value.Tuple) bool) bool {
	r := o.extra.rels[rel]
	if r == nil {
		return true
	}
	return r.LookupTuplesKeyRange(cols, projKey, floor, r.Len(), f)
}
