package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"blockchaindb/internal/value"
)

func intTuple(vals ...int) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(int64(v))
	}
	return t
}

// TestRelationTruncate: Truncate undoes inserts exactly — tuple list,
// key map, and index buckets all return to their pre-insert state, and
// the relation accepts the removed tuples again afterwards.
func TestRelationTruncate(t *testing.T) {
	r := NewRelation(NewSchema("R", "a:int", "b:int"))
	for i := 0; i < 6; i++ {
		r.MustInsert(intTuple(i%3, i))
	}
	// Build the index before truncating so postings must be undone too.
	key := intTuple(1, 0).ProjectKey([]int{0})
	if got := len(r.Lookup([]int{0}, key)); got != 2 {
		t.Fatalf("pre-truncate bucket size = %d, want 2", got)
	}
	r.Truncate(3)
	if r.Len() != 3 {
		t.Fatalf("Len = %d after Truncate(3)", r.Len())
	}
	if r.Contains(intTuple(0, 3)) {
		t.Error("truncated tuple still Contains")
	}
	if !r.Contains(intTuple(2, 2)) {
		t.Error("surviving tuple lost")
	}
	if got := len(r.Lookup([]int{0}, key)); got != 1 {
		t.Fatalf("post-truncate bucket size = %d, want 1", got)
	}
	// Removed tuples are genuinely gone: re-inserting succeeds and the
	// index sees them again.
	if ok, _ := r.Insert(intTuple(0, 3)); !ok {
		t.Error("re-insert of a truncated tuple reported duplicate")
	}
	key0 := intTuple(0, 0).ProjectKey([]int{0})
	if got := len(r.Lookup([]int{0}, key0)); got != 2 {
		t.Fatalf("a=0 bucket size after re-insert = %d, want 2", got)
	}
	// No-op and clamping cases.
	r.Truncate(100)
	if r.Len() != 4 {
		t.Fatalf("Truncate past the end changed Len to %d", r.Len())
	}
	r.Truncate(-1)
	if r.Len() != 0 {
		t.Fatalf("Truncate(-1) left %d tuples", r.Len())
	}
}

// TestRelationTruncateRandomized cross-checks a long random
// insert/truncate interleaving against a rebuilt-from-scratch twin:
// after every operation both relations answer Contains, Lookup, and
// ScanRange identically.
func TestRelationTruncateRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func() *Relation { return NewRelation(NewSchema("R", "a:int", "b:int")) }
	r := mk()
	var log []value.Tuple // insertion-ordered distinct tuples
	for step := 0; step < 400; step++ {
		if rng.Intn(3) > 0 || len(log) == 0 {
			tup := intTuple(rng.Intn(5), rng.Intn(40))
			if ok, _ := r.Insert(tup); ok {
				log = append(log, tup)
			}
		} else {
			n := rng.Intn(len(log) + 1)
			r.Truncate(n)
			log = log[:n]
		}
		if rng.Intn(8) != 0 {
			continue
		}
		// Rebuild the oracle and compare observable state.
		want := mk()
		for _, tup := range log {
			want.MustInsert(tup)
		}
		if r.Len() != want.Len() {
			t.Fatalf("step %d: Len %d vs %d", step, r.Len(), want.Len())
		}
		for a := 0; a < 5; a++ {
			key := intTuple(a).ProjectKey([]int{0})
			if got, exp := fmt.Sprint(r.Lookup([]int{0}, key)), fmt.Sprint(want.Lookup([]int{0}, key)); got != exp {
				t.Fatalf("step %d: Lookup(a=%d) %s vs %s", step, a, got, exp)
			}
		}
		lo, hi := rng.Intn(len(log)+1), rng.Intn(len(log)+1)
		var got, exp []value.Tuple
		r.ScanRange(lo, hi, func(tup value.Tuple) bool { got = append(got, tup); return true })
		want.ScanRange(lo, hi, func(tup value.Tuple) bool { exp = append(exp, tup); return true })
		if fmt.Sprint(got) != fmt.Sprint(exp) {
			t.Fatalf("step %d: ScanRange(%d,%d) %v vs %v", step, lo, hi, got, exp)
		}
	}
}

// TestOverlayMarkPop: AppendMark/PopToMark round-trips through nested
// transaction pushes, including tuples duplicated across transactions
// (the dedup means the second Add is a no-op, so the pop of the later
// transaction must not remove the earlier one's tuple).
func TestOverlayMarkPop(t *testing.T) {
	base := NewState()
	base.MustAddSchema(NewSchema("R", "a:int", "b:int"))
	base.MustAddSchema(NewSchema("S", "x:int"))
	base.MustInsert("R", intTuple(0, 0))
	o := NewOverlay(base)

	t1 := NewTransaction("T1").Add("R", intTuple(1, 1)).Add("S", intTuple(7))
	t2 := NewTransaction("T2").Add("R", intTuple(1, 1)).Add("R", intTuple(2, 2)) // duplicates T1's R tuple

	var marks []int
	m0 := len(marks)
	marks = o.AppendMark(marks)
	o.Add(t1)
	m1 := len(marks)
	marks = o.AppendMark(marks)
	o.Add(t2)

	if !o.Contains("R", intTuple(2, 2)) || !o.Contains("S", intTuple(7)) {
		t.Fatal("overlay missing pushed tuples")
	}
	o.PopToMark(marks[m1 : m1+o.MarkLen()])
	marks = marks[:m1]
	if o.Contains("R", intTuple(2, 2)) {
		t.Error("T2's tuple survived its pop")
	}
	if !o.Contains("R", intTuple(1, 1)) {
		t.Error("popping T2 removed T1's tuple (shared with T2)")
	}
	if !o.Contains("S", intTuple(7)) {
		t.Error("popping T2 touched S")
	}
	o.PopToMark(marks[m0 : m0+o.MarkLen()])
	if o.ExtraSize() != 0 {
		t.Fatalf("ExtraSize = %d after popping to the root mark", o.ExtraSize())
	}
	if !o.Contains("R", intTuple(0, 0)) {
		t.Error("base tuple lost")
	}
	// The overlay is fully reusable after a pop-to-root.
	o.Add(t2)
	if !o.Contains("R", intTuple(1, 1)) || !o.Contains("R", intTuple(2, 2)) {
		t.Error("re-Add after pop-to-root incomplete")
	}
}

// TestOverlayWindows: the below/from windows partition the overlay at a
// floor — Below sees exactly the overlay as it stood at the mark, From
// sees exactly the delta, and together they cover every tuple once.
func TestOverlayWindows(t *testing.T) {
	base := NewState()
	base.MustAddSchema(NewSchema("R", "a:int", "b:int"))
	base.MustInsert("R", intTuple(1, 100))
	base.MustInsert("R", intTuple(2, 200))
	o := NewOverlay(base, NewTransaction("T1").Add("R", intTuple(1, 101)))
	floor := o.ExtraCount("R")
	o.Add(NewTransaction("T2").Add("R", intTuple(1, 102)).Add("R", intTuple(3, 300)))

	collect := func(scan func(func(value.Tuple) bool) bool) map[string]int {
		out := map[string]int{}
		scan(func(tup value.Tuple) bool { out[fmt.Sprint(tup)]++; return true })
		return out
	}
	below := collect(func(f func(value.Tuple) bool) bool { return o.ScanBelow("R", floor, f) })
	from := collect(func(f func(value.Tuple) bool) bool { return o.ScanFrom("R", floor, f) })
	if len(below) != 3 || below[fmt.Sprint(intTuple(1, 101))] != 1 {
		t.Fatalf("ScanBelow = %v", below)
	}
	if len(from) != 2 || from[fmt.Sprint(intTuple(1, 102))] != 1 || from[fmt.Sprint(intTuple(3, 300))] != 1 {
		t.Fatalf("ScanFrom = %v", from)
	}

	// Keyed probes over a=1: base 100, pre-mark 101, delta 102.
	cols := []int{0}
	key := []byte(intTuple(1).ProjectKey(cols))
	belowK := collect(func(f func(value.Tuple) bool) bool { return o.LookupKeyBelow("R", cols, key, floor, f) })
	fromK := collect(func(f func(value.Tuple) bool) bool { return o.LookupKeyFrom("R", cols, key, floor, f) })
	allK := collect(func(f func(value.Tuple) bool) bool { return o.LookupKey("R", cols, key, f) })
	if len(belowK) != 2 || len(fromK) != 1 || len(allK) != 3 {
		t.Fatalf("keyed windows: below=%v from=%v all=%v", belowK, fromK, allK)
	}
	for k := range belowK {
		if fromK[k] != 0 {
			t.Fatalf("tuple %s in both windows", k)
		}
	}
	// Early-stop propagation through the windowed forms.
	n := 0
	o.ScanBelow("R", floor, func(value.Tuple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("ScanBelow ignored early stop (n=%d)", n)
	}
}
