package relmap

import (
	"context"
	"fmt"

	"blockchaindb/internal/bitcoin"
	"blockchaindb/internal/core"
	"blockchaindb/internal/query"
)

// NodeMonitor keeps one node's chain and mempool mapped into a
// persistent core.Monitor instead of rebuilding the relational
// database from scratch at every checkpoint. Rebuilding is what the
// paper's Bitcoin experiment does naively — re-parse the whole chain,
// re-map the whole mempool, re-check from cold; the NodeMonitor
// instead feeds the Monitor deltas (blocks commit transactions, the
// mempool gains and loses them), which is exactly what the Monitor's
// incremental structures — conflict buckets, appendability statuses,
// and the per-component verdict cache — are built to absorb. A
// mempool-tick recheck after a single-transaction delta then replays
// every untouched component's verdict from cache.
//
// NodeMonitor is not safe for concurrent use: Sync mutates the mapping
// in step with the node's own single-threaded event loop. The embedded
// core.Monitor remains safe for concurrent Checks.
type NodeMonitor struct {
	chain   *bitcoin.Chain
	mempool *bitcoin.Mempool
	mon     *core.Monitor
	opts    []core.MonitorOption

	synced   []bitcoin.Hash       // main-chain hashes at the last successful sync
	byTxID   map[bitcoin.Hash]int // mempool txid -> monitor pending id
	rebuilds int                  // full rebuilds (reorgs or sync errors)
}

// NewNodeMonitor maps the node's current chain and mempool and wraps
// them in a core.Monitor. The options are forwarded to core.NewMonitor
// (and re-applied on every rebuild) — core.WithTenant, for example,
// bills every check run through the node monitor to one attribution
// principal unless the check's context carries its own.
func NewNodeMonitor(chain *bitcoin.Chain, mempool *bitcoin.Mempool, opts ...core.MonitorOption) (*NodeMonitor, error) {
	nm := &NodeMonitor{chain: chain, mempool: mempool, opts: opts}
	if err := nm.rebuild(); err != nil {
		return nil, err
	}
	return nm, nil
}

// rebuild remaps everything from scratch — the fallback for reorgs and
// for any delta that fails to apply cleanly.
func (nm *NodeMonitor) rebuild() error {
	db, err := Database(nm.chain, nm.mempool)
	if err != nil {
		return err
	}
	nm.mon = core.NewMonitor(db, nm.opts...)
	nm.synced = append([]bitcoin.Hash(nil), nm.chain.MainChain()...)
	// Database maps the deduplicated mempool in order, and NewMonitor
	// assigns ids 0..n-1 in that same order.
	nm.byTxID = make(map[bitcoin.Hash]int, len(db.Pending))
	id := 0
	for _, tx := range nm.mempool.Transactions() {
		if _, dup := nm.byTxID[tx.ID()]; dup {
			continue
		}
		nm.byTxID[tx.ID()] = id
		id++
	}
	return nil
}

// Sync brings the Monitor up to date with the node: newly mined blocks
// commit their transactions (mempool transactions through
// Monitor.Commit, coinbases and never-gossiped transactions through
// CommitExternal), then the mempool is diffed by txid into
// AddPending/DropPending calls. A reorg — the stored main-chain prefix
// no longer matches — or any delta that fails to apply triggers a full
// rebuild, so Sync never leaves the mapping diverged.
func (nm *NodeMonitor) Sync() error {
	if err := nm.applyDeltas(); err != nil {
		nm.rebuilds++
		return nm.rebuild()
	}
	return nil
}

func (nm *NodeMonitor) applyDeltas() error {
	cur := nm.chain.MainChain()
	if len(cur) < len(nm.synced) {
		return fmt.Errorf("relmap: chain shortened (reorg)")
	}
	for i, h := range nm.synced {
		if cur[i] != h {
			return fmt.Errorf("relmap: chain prefix changed at height %d (reorg)", i)
		}
	}
	if len(cur) > len(nm.synced) {
		// New blocks. Resolve inputs against the full history plus the
		// mempool — mined transactions spend outputs that already exist
		// in one or the other.
		resolver := HistoryResolver(nm.chain, nm.mempool)
		for _, h := range cur[len(nm.synced):] {
			b, ok := nm.chain.Block(h)
			if !ok {
				return fmt.Errorf("relmap: missing block %v", h)
			}
			for _, tx := range b.Txs {
				if id, mine := nm.byTxID[tx.ID()]; mine {
					if err := nm.mon.Commit(id); err != nil {
						return err
					}
					delete(nm.byTxID, tx.ID())
					continue
				}
				rt, err := MapTransaction(tx, resolver)
				if err != nil {
					return err
				}
				if err := nm.mon.CommitExternal(rt); err != nil {
					return err
				}
			}
		}
		nm.synced = append(nm.synced, cur[len(nm.synced):]...)
	}
	// Mempool diff by txid.
	want := make(map[bitcoin.Hash]*bitcoin.Transaction, nm.mempool.Len())
	for _, tx := range nm.mempool.Transactions() {
		if _, dup := want[tx.ID()]; !dup {
			want[tx.ID()] = tx
		}
	}
	for txid, id := range nm.byTxID {
		if _, still := want[txid]; still {
			continue
		}
		if err := nm.mon.DropPending(id); err != nil {
			return err
		}
		delete(nm.byTxID, txid)
	}
	var resolver bitcoin.OutputSource
	for txid, tx := range want {
		if _, have := nm.byTxID[txid]; have {
			continue
		}
		if resolver == nil {
			resolver = HistoryResolver(nm.chain, nm.mempool)
		}
		rt, err := MapTransaction(tx, resolver)
		if err != nil {
			return err
		}
		id, err := nm.mon.AddPending(rt)
		if err != nil {
			return err
		}
		nm.byTxID[txid] = id
	}
	return nil
}

// Check runs the denial constraint over the monitored database through
// the incremental path.
func (nm *NodeMonitor) Check(ctx context.Context, q *query.Query, opts core.Options) (*core.Result, error) {
	return nm.mon.Check(ctx, q, opts)
}

// Monitor exposes the underlying core.Monitor (for AddPending of
// hypothetical transactions, CacheStats, etc.).
func (nm *NodeMonitor) Monitor() *core.Monitor { return nm.mon }

// CacheStats snapshots the verdict cache of the current Monitor.
func (nm *NodeMonitor) CacheStats() core.CacheStats { return nm.mon.CacheStats() }

// GraphStats snapshots the Monitor's persistently maintained graph
// structures (pending/live counts, Θ_I components, fd-conflict pairs,
// commit-refresh work), for node dashboards and tests.
func (nm *NodeMonitor) GraphStats() core.GraphStats { return nm.mon.GraphStatsSnapshot() }

// Rebuilds reports how many times Sync fell back to a full remap.
func (nm *NodeMonitor) Rebuilds() int { return nm.rebuilds }

// PendingID returns the monitor id of a mempool transaction, when the
// transaction is currently mapped.
func (nm *NodeMonitor) PendingID(txid bitcoin.Hash) (int, bool) {
	id, ok := nm.byTxID[txid]
	return id, ok
}
