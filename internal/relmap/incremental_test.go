package relmap

import (
	"context"
	"testing"

	"blockchaindb/internal/bitcoin"
	"blockchaindb/internal/core"
	"blockchaindb/internal/query"
)

// nmAgree cross-validates the delta-synced NodeMonitor against a
// database freshly mapped from the same chain and mempool.
func nmAgree(t *testing.T, nm *NodeMonitor, queries []*query.Query) {
	t.Helper()
	fresh, err := Database(nm.chain, nm.mempool)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		warm, err := nm.Check(context.Background(), q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := core.Check(context.Background(), fresh, q, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Satisfied != cold.Satisfied {
			t.Fatalf("%s: delta-synced monitor %v, fresh map %v", q, warm.Satisfied, cold.Satisfied)
		}
	}
}

// TestNodeMonitorSyncMatchesRebuild drives a node through mempool
// arrivals and mined blocks and checks that the delta-synced monitor
// stays verdict-equivalent to remapping from scratch — without ever
// falling back to a rebuild.
func TestNodeMonitorSyncMatchesRebuild(t *testing.T) {
	r := newRig(t)
	r.mine(t)
	nm, err := NewNodeMonitor(r.chain, r.mempool)
	if err != nil {
		t.Fatal(err)
	}
	bobPk := PubKeyString(r.bob.PubKey())
	queries := []*query.Query{
		query.MustParse("qs() :- TxOut(t, s, '" + bobPk + "', a)"),
		query.MustParse("q() :- TxOut(t, s, 'deadbeef', a)"),
	}
	nmAgree(t, nm, queries)

	// Mempool delta: a pending payment to Bob.
	pay, err := r.alice.Pay(r.chain.UTXO(),
		[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: 2 * bitcoin.Coin}}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mempool.Add(pay); err != nil {
		t.Fatal(err)
	}
	if err := nm.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := nm.PendingID(pay.ID()); !ok {
		t.Fatal("synced mempool transaction has no pending id")
	}
	nmAgree(t, nm, queries)

	// Chain delta: mining commits the payment (and a coinbase the
	// monitor never saw as pending).
	r.mine(t)
	if err := nm.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok := nm.PendingID(pay.ID()); ok {
		t.Fatal("mined transaction still mapped as pending")
	}
	nmAgree(t, nm, queries)

	// Another round of both, then a no-op sync.
	pay2, err := r.alice.Pay(r.chain.UTXO(),
		[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: bitcoin.Coin}}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mempool.Add(pay2); err != nil {
		t.Fatal(err)
	}
	if err := nm.Sync(); err != nil {
		t.Fatal(err)
	}
	r.mine(t)
	if err := nm.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := nm.Sync(); err != nil {
		t.Fatal(err)
	}
	nmAgree(t, nm, queries)

	if nm.Rebuilds() != 0 {
		t.Fatalf("delta path fell back to %d rebuilds", nm.Rebuilds())
	}
}

// TestNodeMonitorWarmRecheckHitsCache: after one checkpoint check, the
// next check on an unchanged node replays every covered component —
// from the delta sweep's verdict map when the query is sweep-eligible,
// otherwise from the content-addressed verdict cache — without
// searching any component again.
func TestNodeMonitorWarmRecheckHitsCache(t *testing.T) {
	r := newRig(t)
	r.mine(t)
	pay, err := r.alice.Pay(r.chain.UTXO(),
		[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: 2 * bitcoin.Coin}}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mempool.Add(pay); err != nil {
		t.Fatal(err)
	}
	nm, err := NewNodeMonitor(r.chain, r.mempool)
	if err != nil {
		t.Fatal(err)
	}
	bobPk := PubKeyString(r.bob.PubKey())
	q := query.MustParse("qs() :- TxOut(t, s, '" + bobPk + "', a)")
	opts := core.Options{Algorithm: core.AlgoOpt, DisablePrecheck: true}
	res1, err := nm.Check(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	cs1 := nm.CacheStats()
	res2, err := nm.Check(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Satisfied != res2.Satisfied {
		t.Fatalf("verdict changed on warm recheck: %v then %v", res1.Satisfied, res2.Satisfied)
	}
	if res2.Stats.ComponentsCached == 0 {
		t.Fatalf("warm recheck replayed no components: %+v", res2.Stats)
	}
	cs2 := nm.CacheStats()
	if cs2.Misses != cs1.Misses || cs2.Stores != cs1.Stores {
		t.Fatalf("warm recheck searched components again: %+v then %+v", cs1, cs2)
	}
}
