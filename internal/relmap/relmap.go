// Package relmap maps the Bitcoin substrate onto the paper's
// relational schema (Example 1): the active chain's transactions become
// the current state R, the mempool's become the pending set T, and the
// keys and inclusion dependencies of the paper's running example hold
// by construction. This is the bridge the paper implements at a Bitcoin
// node: parse the blockchain into relations, then reason about denial
// constraints over them.
package relmap

import (
	"encoding/hex"
	"fmt"

	"blockchaindb/internal/bitcoin"
	"blockchaindb/internal/constraint"
	"blockchaindb/internal/possible"
	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// Schema registers the paper's two relations on a fresh state, with
// string transaction ids (hex hashes) and integer amounts (satoshis):
//
//	TxOut(txId, ser, pk, amount)
//	TxIn(prevTxId, prevSer, pk, amount, newTxId, sig)
func Schema() *relation.State {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("TxOut",
		"txId:string", "ser:int", "pk:string", "amount:int"))
	s.MustAddSchema(relation.NewSchema("TxIn",
		"prevTxId:string", "prevSer:int", "pk:string", "amount:int", "newTxId:string", "sig:string"))
	return s
}

// Constraints builds the paper's integrity constraints over the schema:
// keys (txId, ser) and (prevTxId, prevSer) — sharing an input is a
// double spend — plus the two inclusion dependencies.
func Constraints(s *relation.State) *constraint.Set {
	return constraint.MustNewSet(s,
		[]*constraint.FD{
			constraint.NewKey(s.Schema("TxOut"), "txId", "ser"),
			constraint.NewKey(s.Schema("TxIn"), "prevTxId", "prevSer"),
		},
		[]*constraint.IND{
			constraint.NewIND("TxIn", []string{"prevTxId", "prevSer", "pk", "amount"},
				"TxOut", []string{"txId", "ser", "pk", "amount"}),
			constraint.NewIND("TxIn", []string{"newTxId"}, "TxOut", []string{"txId"}),
		})
}

// PubKeyString renders a public key as the pk attribute value.
func PubKeyString(pub []byte) string { return hex.EncodeToString(pub) }

// outTuple builds a TxOut row.
func outTuple(txID bitcoin.Hash, ser int, out bitcoin.TxOut) value.Tuple {
	return value.NewTuple(
		value.Str(txID.String()),
		value.Int(int64(ser)),
		value.Str(PubKeyString(out.PubKey)),
		value.Int(int64(out.Value)),
	)
}

// inTuple builds a TxIn row; prev is the consumed output.
func inTuple(in bitcoin.TxIn, prev bitcoin.TxOut, newTxID bitcoin.Hash) value.Tuple {
	return value.NewTuple(
		value.Str(in.Prev.TxID.String()),
		value.Int(int64(in.Prev.Index)),
		value.Str(PubKeyString(prev.PubKey)),
		value.Int(int64(prev.Value)),
		value.Str(newTxID.String()),
		value.Str(hex.EncodeToString(in.Sig)),
	)
}

// MapTransaction converts one Bitcoin transaction into an insert
// transaction over the relational schema. The paper's TxIn relation
// denormalizes the consumed output's pk and amount, so inputs are
// resolved against src (chain UTXO plus, for pending chains, the
// mempool view).
func MapTransaction(tx *bitcoin.Transaction, src bitcoin.OutputSource) (*relation.Transaction, error) {
	id := tx.ID()
	rt := relation.NewTransaction(id.Short())
	for _, in := range tx.Ins {
		prev, ok := src.Output(in.Prev)
		if !ok {
			return nil, fmt.Errorf("relmap: cannot resolve input %v of %s", in.Prev, id.Short())
		}
		rt.Add("TxIn", inTuple(in, prev, id))
	}
	for i, out := range tx.Outs {
		rt.Add("TxOut", outTuple(id, i, out))
	}
	return rt, nil
}

// MapChain materializes the active chain into the current state R,
// block by block in chain order. Input resolution uses a replayed
// output index so spent outputs still resolve (the relational state is
// append-only history, unlike the UTXO set).
func MapChain(chain *bitcoin.Chain) (*relation.State, error) {
	s := Schema()
	history := newHistorySource()
	for _, h := range chain.MainChain() {
		b, _ := chain.Block(h)
		for _, tx := range b.Txs {
			rt, err := MapTransaction(tx, history)
			if err != nil {
				return nil, err
			}
			if err := s.InsertTransaction(rt); err != nil {
				return nil, err
			}
			history.apply(tx)
		}
	}
	return s, nil
}

// historySource resolves outpoints against everything ever created,
// ignoring spent-ness: the relational mapping wants historical rows.
type historySource struct {
	outs map[bitcoin.OutPoint]bitcoin.TxOut
}

func newHistorySource() *historySource {
	return &historySource{outs: make(map[bitcoin.OutPoint]bitcoin.TxOut)}
}

func (h *historySource) apply(tx *bitcoin.Transaction) {
	id := tx.ID()
	for i, out := range tx.Outs {
		h.outs[bitcoin.OutPoint{TxID: id, Index: uint32(i)}] = out
	}
}

func (h *historySource) Output(op bitcoin.OutPoint) (bitcoin.TxOut, bool) {
	out, ok := h.outs[op]
	return out, ok
}

// HistoryResolver returns an output source that resolves outpoints
// against the full active-chain history plus every mempool output,
// ignoring spent-ness — what MapTransaction needs for pending
// transactions, whose inputs are by definition outpoints they spend.
func HistoryResolver(chain *bitcoin.Chain, mempool *bitcoin.Mempool) bitcoin.OutputSource {
	history := newHistorySource()
	for _, h := range chain.MainChain() {
		b, _ := chain.Block(h)
		for _, tx := range b.Txs {
			history.apply(tx)
		}
	}
	if mempool != nil {
		for _, tx := range mempool.Transactions() {
			history.apply(tx)
		}
	}
	return history
}

// Database assembles the paper's blockchain database D = (R, I, T) from
// a node's chain and mempool: R is the mapped active chain, I the
// Example 1 constraints, and T the mapped pending transactions (fee
// order, deterministic). The state is verified to satisfy I.
func Database(chain *bitcoin.Chain, mempool *bitcoin.Mempool) (*possible.DB, error) {
	return DatabaseFromPending(chain, mempool.Transactions())
}

// DatabaseFromPending is Database with an explicit pending set — e.g.
// the union of several nodes' mempools, which (unlike a single
// mempool) may contain conflicting transactions, exactly the
// contradictions the paper's model reasons about. Duplicates (by id)
// are collapsed.
func DatabaseFromPending(chain *bitcoin.Chain, txs []*bitcoin.Transaction) (*possible.DB, error) {
	state, err := MapChain(chain)
	if err != nil {
		return nil, err
	}
	cons := Constraints(state)
	history := newHistorySource()
	for _, h := range chain.MainChain() {
		b, _ := chain.Block(h)
		for _, tx := range b.Txs {
			history.apply(tx)
		}
	}
	seen := make(map[bitcoin.Hash]bool, len(txs))
	var distinct []*bitcoin.Transaction
	for _, tx := range txs {
		if seen[tx.ID()] {
			continue
		}
		seen[tx.ID()] = true
		distinct = append(distinct, tx)
		history.apply(tx)
	}
	var pending []*relation.Transaction
	for _, tx := range distinct {
		rt, err := MapTransaction(tx, history)
		if err != nil {
			return nil, err
		}
		pending = append(pending, rt)
	}
	return possible.New(state, cons, pending)
}
