package relmap

import (
	"context"
	"math/rand"
	"testing"

	"blockchaindb/internal/bitcoin"
	"blockchaindb/internal/core"
	"blockchaindb/internal/query"
	"blockchaindb/internal/value"
)

type rig struct {
	chain   *bitcoin.Chain
	mempool *bitcoin.Mempool
	miner   *bitcoin.Miner
	alice   *bitcoin.Wallet
	bob     *bitcoin.Wallet
	now     int64
}

func newRig(t *testing.T) *rig {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	alice := bitcoin.NewWallet("alice", rng)
	bob := bitcoin.NewWallet("bob", rng)
	params := bitcoin.Params{Difficulty: 2, Subsidy: 50 * bitcoin.Coin, MaxBlockSize: 8192}
	chain := bitcoin.NewChain(params, alice.PubKey())
	mempool := bitcoin.NewMempool(chain)
	miner := bitcoin.NewMiner(chain, mempool, alice.PubKey())
	return &rig{chain: chain, mempool: mempool, miner: miner, alice: alice, bob: bob}
}

func (r *rig) mine(t *testing.T) {
	t.Helper()
	r.now++
	if _, _, err := r.miner.Mine(r.now); err != nil {
		t.Fatal(err)
	}
}

func TestMapChainSatisfiesConstraints(t *testing.T) {
	r := newRig(t)
	// A few blocks with real payments.
	for i := 0; i < 3; i++ {
		tx, err := r.alice.Pay(r.chain.UTXO(),
			[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: bitcoin.Coin}}, 100, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.mempool.Add(tx); err != nil {
			t.Fatal(err)
		}
		r.mine(t)
	}
	state, err := MapChain(r.chain)
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints(state)
	if err := cons.Check(state); err != nil {
		t.Fatalf("mapped chain violates paper constraints: %v", err)
	}
	// Row counts: every tx contributes its ins and outs.
	var wantIns, wantOuts int
	for _, h := range r.chain.MainChain() {
		b, _ := r.chain.Block(h)
		for _, tx := range b.Txs {
			wantIns += len(tx.Ins)
			wantOuts += len(tx.Outs)
		}
	}
	if got := state.Count("TxIn"); got != wantIns {
		t.Errorf("TxIn rows = %d, want %d", got, wantIns)
	}
	if got := state.Count("TxOut"); got != wantOuts {
		t.Errorf("TxOut rows = %d, want %d", got, wantOuts)
	}
}

func TestDatabaseWithPending(t *testing.T) {
	r := newRig(t)
	r.mine(t)
	// One pending payment, plus a dependent child spending its change.
	pay, err := r.alice.Pay(r.chain.UTXO(),
		[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: bitcoin.Coin}}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mempool.Add(pay); err != nil {
		t.Fatal(err)
	}
	child, err := r.bob.SpendOutpoint(r.mempool.View(),
		bitcoin.OutPoint{TxID: pay.ID(), Index: 0},
		[]bitcoin.Payment{{To: r.alice.PubKey(), Amount: bitcoin.Coin / 2}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mempool.Add(child); err != nil {
		t.Fatal(err)
	}
	d, err := Database(r.chain, r.mempool)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pending) != 2 {
		t.Fatalf("pending = %d", len(d.Pending))
	}
	// The dependency is visible to the possible-world semantics: the
	// child alone is not reachable, parent+child is.
	childIdx, parentIdx := -1, -1
	for i, tx := range d.Pending {
		switch tx.Name {
		case child.ID().Short():
			childIdx = i
		case pay.ID().Short():
			parentIdx = i
		}
	}
	if childIdx < 0 || parentIdx < 0 {
		t.Fatal("pending names not mapped")
	}
	if d.IsReachable([]int{childIdx}) {
		t.Error("child reachable without parent")
	}
	if !d.IsReachable([]int{parentIdx, childIdx}) {
		t.Error("parent+child not reachable")
	}
}

// TestDoubleSpendBecomesKeyConflict: the relational image of two
// transactions spending the same outpoint violates the TxIn key — the
// paper's modelling of Bitcoin conflicts.
func TestDoubleSpendBecomesKeyConflict(t *testing.T) {
	r := newRig(t)
	op := r.chain.UTXO().ByOwner(r.alice.PubKey())[0]
	tx1, _ := r.alice.SpendOutpoint(r.chain.UTXO(), op,
		[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: bitcoin.Coin}}, 100)
	tx2, _ := r.alice.SpendOutpoint(r.chain.UTXO(), op,
		[]bitcoin.Payment{{To: r.alice.PubKey(), Amount: bitcoin.Coin}}, 100)
	state, err := MapChain(r.chain)
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints(state)
	rt1, err := MapTransaction(tx1, r.chain.UTXO())
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := MapTransaction(tx2, r.chain.UTXO())
	if err != nil {
		t.Fatal(err)
	}
	if cons.FDCompatible(rt1, rt2) {
		t.Error("double spend mapped to compatible transactions")
	}
}

// TestEndToEndDCSat: mine a chain, leave a pending payment to Bob, and
// check the paper's qs-style denial constraint over the mapped
// database.
func TestEndToEndDCSat(t *testing.T) {
	r := newRig(t)
	r.mine(t)
	pay, err := r.alice.Pay(r.chain.UTXO(),
		[]bitcoin.Payment{{To: r.bob.PubKey(), Amount: 2 * bitcoin.Coin}}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mempool.Add(pay); err != nil {
		t.Fatal(err)
	}
	d, err := Database(r.chain, r.mempool)
	if err != nil {
		t.Fatal(err)
	}
	bobPk := PubKeyString(r.bob.PubKey())
	qs := query.MustParse("qs() :- TxOut(t, s, '" + bobPk + "', a)")
	res, err := core.Check(context.Background(), d, qs, core.Options{Algorithm: core.AlgoOpt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Error("pending payment to Bob must violate the denial constraint")
	}
	// An unknown key is never paid.
	qNone := query.MustParse("q() :- TxOut(t, s, 'deadbeef', a)")
	res2, err := core.Check(context.Background(), d, qNone, core.Options{Algorithm: core.AlgoOpt})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Satisfied {
		t.Error("unknown key satisfied a payment constraint")
	}
}

func TestMapTransactionUnresolvable(t *testing.T) {
	r := newRig(t)
	ghost := bitcoin.NewTransaction(
		[]bitcoin.TxIn{{Prev: bitcoin.OutPoint{Index: 5}}},
		[]bitcoin.TxOut{{Value: 1, PubKey: r.bob.PubKey()}}).Finalize()
	if _, err := MapTransaction(ghost, r.chain.UTXO()); err == nil {
		t.Error("unresolvable input mapped")
	}
}

func TestTupleShapes(t *testing.T) {
	r := newRig(t)
	state, err := MapChain(r.chain)
	if err != nil {
		t.Fatal(err)
	}
	// The genesis coinbase output row exists with the full 64-char id.
	found := false
	state.Scan("TxOut", func(tp value.Tuple) bool {
		if len(tp[0].AsString()) == 64 && tp[3].AsInt() == int64(50*bitcoin.Coin) {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("genesis coinbase row missing or misshapen")
	}
}
