package value

import "testing"

// TestNegativeZeroNormalized pins the fuzz-found invariant: Float(-0)
// and Float(0) must be identical values (same key encoding, same
// rendering), since they compare equal.
func TestNegativeZeroNormalized(t *testing.T) {
	neg := Float(negZero())
	pos := Float(0)
	if neg != pos {
		t.Error("Float(-0) != Float(0)")
	}
	if neg.String() != "0" {
		t.Errorf("Float(-0).String() = %q", neg.String())
	}
	if NewTuple(neg).Key() != NewTuple(pos).Key() {
		t.Error("key encodings differ for ±0")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
