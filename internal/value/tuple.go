package value

import "strings"

// Tuple is an ordered sequence of values — one row of a relation.
// Tuples are treated as immutable once constructed; code that needs a
// modified copy should use Clone.
type Tuple []Value

// NewTuple builds a tuple from the given values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Key returns a string that uniquely identifies the tuple's contents.
// It is suitable as a map key: two tuples have equal keys iff they are
// element-wise == (see Value.AppendKey).
func (t Tuple) Key() string {
	buf := make([]byte, 0, 16*len(t))
	return string(t.AppendKey(buf))
}

// AppendKey appends the tuple's Key encoding to dst and returns the
// extended slice. Hot paths reuse one buffer across probes and look up
// maps with the non-allocating map[string(buf)] form; Key() is the
// allocating convenience wrapper.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = v.appendKey(dst)
	}
	return dst
}

// Project returns the subtuple at the given column indexes, in order.
// It panics if an index is out of range.
func (t Tuple) Project(cols []int) Tuple {
	p := make(Tuple, len(cols))
	for i, c := range cols {
		p[i] = t[c]
	}
	return p
}

// ProjectKey returns Key() of the projection without allocating the
// intermediate tuple.
func (t Tuple) ProjectKey(cols []int) string {
	buf := make([]byte, 0, 16*len(cols))
	return string(t.AppendProjectKey(buf, cols))
}

// AppendProjectKey appends the projection's Key encoding to dst and
// returns the extended slice — ProjectKey without the string
// allocation, for per-probe index keys built into a reusable buffer.
func (t Tuple) AppendProjectKey(dst []byte, cols []int) []byte {
	for _, c := range cols {
		dst = t[c].appendKey(dst)
	}
	return dst
}

// Equal reports element-wise equality under the values' total order.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; shorter tuples sort first on
// ties. It gives a total order used for deterministic iteration.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return cmpInt64(int64(len(t)), int64(len(o)))
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
