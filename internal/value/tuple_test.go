package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleClone(t *testing.T) {
	orig := NewTuple(Int(1), Str("x"))
	c := orig.Clone()
	if !c.Equal(orig) {
		t.Fatal("clone not equal to original")
	}
	c[0] = Int(99)
	if orig[0].AsInt() != 1 {
		t.Error("mutating clone affected original")
	}
}

func TestTupleProject(t *testing.T) {
	tp := NewTuple(Int(10), Int(20), Int(30), Int(40))
	got := tp.Project([]int{3, 1})
	want := NewTuple(Int(40), Int(20))
	if !got.Equal(want) {
		t.Errorf("Project = %v, want %v", got, want)
	}
	if got.Key() != tp.ProjectKey([]int{3, 1}) {
		t.Error("ProjectKey disagrees with Project().Key()")
	}
}

func TestTupleEqual(t *testing.T) {
	a := NewTuple(Int(1), Str("x"))
	b := NewTuple(Int(1), Str("x"))
	c := NewTuple(Int(1))
	d := NewTuple(Int(1), Str("y"))
	if !a.Equal(b) {
		t.Error("equal tuples reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal tuples reported equal")
	}
	// Numeric cross-kind equality carries over to tuples.
	if !NewTuple(Int(1)).Equal(NewTuple(Float(1))) {
		t.Error("tuple Equal should use value total order")
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{NewTuple(Int(1)), NewTuple(Int(2)), -1},
		{NewTuple(Int(1), Int(5)), NewTuple(Int(1), Int(3)), 1},
		{NewTuple(Int(1)), NewTuple(Int(1), Int(0)), -1}, // shorter first
		{NewTuple(), NewTuple(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func randomTuple(r *rand.Rand) Tuple {
	n := r.Intn(4)
	tp := make(Tuple, n)
	for i := range tp {
		tp[i] = randomValue(r)
	}
	return tp
}

// TestTupleKeyInjective: tuple keys collide exactly when tuples are
// element-wise identical (==, not just order-equal).
func TestTupleKeyInjective(t *testing.T) {
	identical := func(a, b Tuple) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTuple(r), randomTuple(r)
		return (a.Key() == b.Key()) == identical(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple(Int(1), Str("x"))
	if got := tp.String(); got != "(1, 'x')" {
		t.Errorf("String() = %q", got)
	}
}
