// Package value defines the typed values and tuples that populate
// relations in a blockchain database.
//
// Values are small immutable tagged unions. They are comparable in the
// Go sense (usable as map keys) and carry a total order so that denial
// constraints may compare them with <, >, =, and ≠, and aggregate
// functions may fold over them.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value may hold.
type Kind uint8

// The supported value kinds. KindNull sorts before every other kind;
// the remaining kinds sort by their numeric Kind when heterogeneous
// values are compared, so that the order over all values is total.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable typed value. The zero Value is Null.
//
// Value contains no pointers or slices, so it is comparable with == and
// may be used directly as a map key. Two Values are == exactly when
// they have the same kind and the same contents; note that for ordering
// (but not ==) integers and floats are compared numerically, so
// Int(1).Compare(Float(1.0)) == 0 even though Int(1) != Float(1.0).
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL-style missing value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value. Negative zero is normalized to
// positive zero: the two compare equal (in Go and under Compare) but
// have different bit patterns, which would otherwise break the
// invariant that ==-equal values share one key encoding — and make
// "-0" render unstably across parse/print round trips.
func Float(v float64) Value {
	if v == 0 {
		v = 0
	}
	return Value{kind: KindFloat, f: v}
}

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a Boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is Null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer contents. It panics if the value is not an
// integer; callers should check Kind first when the kind is not known.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the value as a float64. Integers are widened; it
// panics for non-numeric kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic("value: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string contents. It panics if the value is not a
// string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the Boolean contents. It panics if the value is not a
// Boolean.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("value: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// IsNumeric reports whether the value is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare returns -1, 0, or +1 according to the total order over
// values. Within numeric kinds the comparison is numeric (so Int(2) <
// Float(2.5)); across non-numeric kinds values order by Kind, then by
// contents. Null sorts first.
func (v Value) Compare(o Value) int {
	if v.IsNumeric() && o.IsNumeric() {
		// Compare exactly when both are ints to avoid float rounding.
		if v.kind == KindInt && o.kind == KindInt {
			return cmpInt64(v.i, o.i)
		}
		return cmpFloat64(v.AsFloat(), o.AsFloat())
	}
	if v.kind != o.kind {
		return cmpInt64(int64(v.kind), int64(o.kind))
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return cmpInt64(v.i, o.i)
	case KindString:
		return strings.Compare(v.s, o.s)
	default:
		return 0
	}
}

// Equal reports whether the two values are equal under the total order
// (numeric cross-kind equality included).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	default:
		// NaNs sort before everything, equal to each other.
		an, bn := math.IsNaN(a), math.IsNaN(b)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
}

// String renders the value in a form accepted back by the query parser:
// strings are single-quoted, numerics are bare, null is "null".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "\\'") + "'"
	default:
		return "?"
	}
}

// Normalize coerces v to the given kind when a lossless conversion
// exists: int ↔ float (float → int only when integral), identity for
// matching kinds, and Null to anything. The second result reports
// whether the coercion succeeded. KindNull as the target means "any
// kind" and always succeeds.
func Normalize(v Value, k Kind) (Value, bool) {
	if k == KindNull || v.kind == KindNull || v.kind == k {
		return v, true
	}
	switch {
	case v.kind == KindInt && k == KindFloat:
		return Float(float64(v.i)), true
	case v.kind == KindFloat && k == KindInt:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return Int(int64(v.f)), true
		}
		return v, false
	default:
		return v, false
	}
}

// AppendKey appends a self-delimiting encoding of v to dst and returns
// the extended slice. The encoding is injective over values for which
// == holds, which is what composite map keys require: distinct values
// yield distinct encodings. It is the allocation-free primitive behind
// Tuple.Key and Tuple.ProjectKey: callers that probe maps in hot loops
// build the key into a reusable buffer and look up with the
// map[string(buf)] form, which the compiler recognizes and compiles
// without materializing a string.
func (v Value) AppendKey(dst []byte) []byte {
	return v.appendKey(dst)
}

// appendKey appends a self-delimiting encoding of v to dst. The
// encoding is injective over values for which == holds, which is what
// composite map keys require: distinct values yield distinct encodings.
func (v Value) appendKey(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool, KindInt:
		dst = appendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = appendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = appendUint64(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
