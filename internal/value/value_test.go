package value

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %g", got)
	}
	if got := Str("abc").AsString(); got != "abc" {
		t.Errorf("Str(abc).AsString() = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip failed")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
	if got := Int(7).AsFloat(); got != 7.0 {
		t.Errorf("Int widening AsFloat = %g", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"AsInt on string", func() { Str("x").AsInt() }},
		{"AsString on int", func() { Int(1).AsString() }},
		{"AsBool on int", func() { Int(1).AsBool() }},
		{"AsFloat on string", func() { Str("x").AsFloat() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestCompareWithinKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Int(1).Compare(Float(1.0)) != 0 {
		t.Error("Int(1) should equal Float(1.0) under the order")
	}
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Error("Int(2) should sort before Float(2.5)")
	}
	if Float(3.5).Compare(Int(3)) != 1 {
		t.Error("Float(3.5) should sort after Int(3)")
	}
	if !Int(1).Equal(Float(1)) {
		t.Error("Equal should agree with Compare==0")
	}
}

func TestCompareHeterogeneous(t *testing.T) {
	// Null < Bool < numerics < String by kind ordering.
	if Null.Compare(Int(-100)) != -1 {
		t.Error("Null should sort before any int")
	}
	if Bool(true).Compare(Int(0)) != -1 {
		t.Error("Bool should sort before Int by kind")
	}
	if Str("").Compare(Float(1e18)) != 1 {
		t.Error("String should sort after Float by kind")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Compare(nan) != 0 {
		t.Error("NaN should equal NaN under the total order")
	}
	if nan.Compare(Float(0)) != -1 || Float(0).Compare(nan) != 1 {
		t.Error("NaN should sort before numbers")
	}
	if nan.Compare(Int(0)) != -1 {
		t.Error("NaN should sort before ints too")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Intn(21) - 10))
	case 3:
		return Float(float64(r.Intn(21)-10) / 2)
	default:
		return Str(string(rune('a' + r.Intn(5))))
	}
}

// TestCompareIsTotalOrder checks antisymmetry and transitivity on random
// triples of values.
func TestCompareIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity: sort three and verify pairwise consistency.
		vs := []Value{a, b, c}
		sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestKeyInjective verifies that distinct values produce distinct key
// encodings and equal values produce equal encodings.
func TestKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		ka := string(a.appendKey(nil))
		kb := string(b.appendKey(nil))
		if a == b {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyNoPrefixConfusion(t *testing.T) {
	// ("ab","c") and ("a","bc") must encode differently.
	t1 := NewTuple(Str("ab"), Str("c"))
	t2 := NewTuple(Str("a"), Str("bc"))
	if t1.Key() == t2.Key() {
		t.Error("tuple key encoding is ambiguous across string boundaries")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("hi"), "'hi'"},
		{Str("it's"), `'it\'s'`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
