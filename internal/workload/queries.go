package workload

import (
	"fmt"
	"strings"

	"blockchaindb/internal/query"
)

// QueryKind enumerates the paper's four denial-constraint families
// (Section 7).
type QueryKind int

// The families: qs (simple), qp_i (path), qr_i (star), qa_n
// (aggregate).
const (
	QuerySimple QueryKind = iota
	QueryPath
	QueryStar
	QueryAggregate
)

// String names the kind.
func (k QueryKind) String() string {
	switch k {
	case QuerySimple:
		return "qs"
	case QueryPath:
		return "qp"
	case QueryStar:
		return "qr"
	case QueryAggregate:
		return "qa"
	default:
		return fmt.Sprintf("query(%d)", int(k))
	}
}

// SimpleQuery builds qs() ← TxOut(ntx, s, X, a): address X received
// bitcoins in some transaction.
func SimpleQuery(x string) *query.Query {
	return query.MustParse(fmt.Sprintf("qs() :- TxOut(ntx, s, '%s', a)", x))
}

// PathQuery builds the paper's qp_i: a series of i transactions
// transferring bitcoins, starting from an output owned by X and ending
// with a spend by Y. Size 3 reproduces the paper's qp3 shape exactly:
//
//	qp3() ← TxOut(ntx1, s1, X, a1), TxIn(ntx1, s1, pk2, a2, ntx2, sig2),
//	        TxOut(ntx2, s2, pk3, a3), TxIn(ntx2, s2, Y, a3, ntx4, sig3)
//
// Size i has i-1 TxOut/TxIn hops. Sizes below 2 are rejected.
func PathQuery(size int, x, y string) (*query.Query, error) {
	if size < 2 {
		return nil, fmt.Errorf("workload: path query size %d < 2", size)
	}
	hops := size - 1
	var parts []string
	for h := 1; h <= hops; h++ {
		owner := fmt.Sprintf("pk%d", h)
		if h == 1 {
			owner = "'" + x + "'"
		}
		spender := fmt.Sprintf("spk%d", h)
		if h == hops {
			spender = "'" + y + "'"
		}
		parts = append(parts,
			fmt.Sprintf("TxOut(ntx%d, s%d, %s, a%d)", h, h, owner, h),
			fmt.Sprintf("TxIn(ntx%d, s%d, %s, a%d, ntx%d, sig%d)", h, h, spender, h, h+1, h),
		)
	}
	return query.Parse(fmt.Sprintf("qp%d() :- %s", size, strings.Join(parts, ", ")))
}

// MustPathQuery is PathQuery but panics on error.
func MustPathQuery(size int, x, y string) *query.Query {
	q, err := PathQuery(size, x, y)
	if err != nil {
		panic(err)
	}
	return q
}

// StarQuery builds the paper's qr_i: address X transferred bitcoins to
// i different addresses — i TxIn/TxOut pairs with pairwise-distinct new
// transaction ids. The paper's qr3 is StarQuery(3, X).
func StarQuery(size int, x string) (*query.Query, error) {
	if size < 1 {
		return nil, fmt.Errorf("workload: star query size %d < 1", size)
	}
	var parts []string
	for j := 1; j <= size; j++ {
		parts = append(parts,
			fmt.Sprintf("TxIn(pntx%d, s%d, '%s', a%d, ntx%d, sig%d)", j, j, x, j, j, j),
			fmt.Sprintf("TxOut(ntx%d, os%d, pk%d, oa%d)", j, j, j, j),
		)
	}
	for i := 1; i <= size; i++ {
		for j := i + 1; j <= size; j++ {
			parts = append(parts, fmt.Sprintf("ntx%d != ntx%d", i, j))
		}
	}
	return query.Parse(fmt.Sprintf("qr%d() :- %s", size, strings.Join(parts, ", ")))
}

// MustStarQuery is StarQuery but panics on error.
func MustStarQuery(size int, x string) *query.Query {
	q, err := StarQuery(size, x)
	if err != nil {
		panic(err)
	}
	return q
}

// AggregateQuery builds the paper's qa_n: address X received at least n
// in total — [qa(sum(a)) ← TxOut(ntx, s, X, a)] >= n.
func AggregateQuery(x string, n int64) *query.Query {
	return query.MustParse(fmt.Sprintf("qa(sum(a)) >= %d :- TxOut(ntx, s, '%s', a)", n, x))
}

// Query instantiates one of the paper's query families against this
// dataset's plants. satisfied selects constants that keep the denial
// constraint satisfied (the pattern cannot occur in any world); its
// negation selects planted constants making it violated. size applies
// to path (2–6) and star (1–6) queries and is ignored otherwise.
func (d *Dataset) Query(kind QueryKind, size int, satisfied bool) (*query.Query, error) {
	p := d.Plant
	switch kind {
	case QuerySimple:
		if satisfied {
			return SimpleQuery(p.AbsentPk), nil
		}
		return SimpleQuery(p.SimplePk), nil
	case QueryPath:
		if size < 2 || size > len(p.PathPks) {
			return nil, fmt.Errorf("workload: path size %d outside planted range", size)
		}
		if satisfied {
			return PathQuery(size, p.AbsentPk, p.AbsentPk)
		}
		// The planted chain: hop h consumes the output owned by
		// PathPks[h-1]; the final spender is PathPks[size-2].
		return PathQuery(size, p.PathPks[0], p.PathPks[size-2])
	case QueryStar:
		if size < 1 || size > p.StarSize {
			return nil, fmt.Errorf("workload: star size %d outside planted range", size)
		}
		if satisfied {
			return StarQuery(size, p.AbsentPk)
		}
		return StarQuery(size, p.StarPk)
	case QueryAggregate:
		if satisfied {
			return AggregateQuery(p.AggPk, p.AggUnionTotal+1), nil
		}
		return AggregateQuery(p.AggPk, p.AggReachable), nil
	default:
		return nil, fmt.Errorf("workload: unknown query kind %v", kind)
	}
}

// MustQuery is Query but panics on error.
func (d *Dataset) MustQuery(kind QueryKind, size int, satisfied bool) *query.Query {
	q, err := d.Query(kind, size, satisfied)
	if err != nil {
		panic(err)
	}
	return q
}
