package workload

import (
	"fmt"
	"math/rand"

	"blockchaindb/internal/bitcoin"
	"blockchaindb/internal/netsim"
	"blockchaindb/internal/possible"
	"blockchaindb/internal/relation"
	"blockchaindb/internal/relmap"
	"blockchaindb/internal/value"
)

// SimConfig configures simulation-backed dataset generation: instead of
// synthesizing relational tuples directly, a full network of nodes
// mines a chain of signed transactions, and the dataset is the
// relational image of one node's replica. Contradictions arise the way
// they do in reality — conflicting transactions gossiped to different
// sides of a partitioned network — rather than by injection.
type SimConfig struct {
	Seed    int64
	Nodes   int
	Wallets int
	// Blocks to mine for the committed state.
	Blocks int
	// TxPerBlock payments injected between blocks.
	TxPerBlock int
	// Pending payments left unconfirmed at the end, beyond the plants.
	Pending int
	// DoubleSpends conflicting pairs fed to opposite partition sides.
	DoubleSpends int
}

// DefaultSimConfig is a laptop-quick simulation.
func DefaultSimConfig() SimConfig {
	return SimConfig{Seed: 1, Nodes: 4, Wallets: 8, Blocks: 12, TxPerBlock: 4, Pending: 24, DoubleSpends: 3}
}

// GenerateFromSimulation builds a Dataset by running the Bitcoin
// substrate end to end: fund wallets, mine a history, leave a pending
// workload (including dependent chains, a spend star, and partitioned
// double spends), and map the result through relmap. The Plant records
// hex public keys, so Dataset.Query works exactly as with the synthetic
// generator (path plants support sizes 2–4, star plants sizes 1–3).
func GenerateFromSimulation(cfg SimConfig) (*Dataset, error) {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	if cfg.Wallets < 4 {
		cfg.Wallets = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wallets := make([]*bitcoin.Wallet, cfg.Wallets)
	for i := range wallets {
		wallets[i] = bitcoin.NewWallet(fmt.Sprintf("w%d", i), rng)
	}
	miner := bitcoin.NewWallet("miner", rng)
	params := bitcoin.Params{Difficulty: 2, Subsidy: 1000 * bitcoin.Coin, MaxBlockSize: 1 << 16}
	sim := netsim.NewSimulator(cfg.Seed)
	net := netsim.NewNetwork(sim, cfg.Nodes, params, wallets[0].PubKey(), miner.PubKey())
	net.ConnectAll(3, 2)
	home := net.Nodes[0]
	settle := func() { sim.Run(sim.Now() + 200) }
	mine := func() error {
		if _, err := net.Nodes[rng.Intn(len(net.Nodes))].MineNow(); err != nil {
			return err
		}
		settle()
		return nil
	}

	// Fund every wallet from the genesis coin.
	var fanout []bitcoin.Payment
	for _, w := range wallets[1:] {
		fanout = append(fanout, bitcoin.Payment{To: w.PubKey(), Amount: 80 * bitcoin.Coin})
	}
	seedTx, err := wallets[0].Pay(home.Chain.UTXO(), fanout, 1000, nil)
	if err != nil {
		return nil, err
	}
	if err := home.SubmitTx(seedTx); err != nil {
		return nil, err
	}
	settle()
	if err := mine(); err != nil {
		return nil, err
	}

	promised := func() map[bitcoin.OutPoint]bool {
		avoid := make(map[bitcoin.OutPoint]bool)
		for _, tx := range home.Mempool.Transactions() {
			for _, in := range tx.Ins {
				avoid[in.Prev] = true
			}
		}
		return avoid
	}
	randomPayment := func() {
		from := wallets[rng.Intn(len(wallets))]
		to := wallets[rng.Intn(len(wallets))]
		amt := bitcoin.Amount(rng.Intn(3)+1) * bitcoin.Coin
		tx, err := from.Pay(home.Chain.UTXO(), []bitcoin.Payment{{To: to.PubKey(), Amount: amt}},
			bitcoin.Amount(rng.Intn(2000)+100), promised())
		if err != nil {
			return
		}
		_ = home.SubmitTx(tx)
	}

	// History: blocks of random payments.
	for b := 0; b < cfg.Blocks; b++ {
		for i := 0; i < cfg.TxPerBlock; i++ {
			randomPayment()
		}
		settle()
		if err := mine(); err != nil {
			return nil, err
		}
	}

	plant := Plant{AbsentPk: "deadbeef"}

	// Plant: simple — a fresh wallet paid only in a pending tx.
	simple := bitcoin.NewWallet("plant-simple", rng)
	plant.SimplePk = relmap.PubKeyString(simple.PubKey())
	if tx, err := wallets[1].Pay(home.Chain.UTXO(),
		[]bitcoin.Payment{{To: simple.PubKey(), Amount: bitcoin.Coin}}, 500, promised()); err == nil {
		if err := home.SubmitTx(tx); err != nil {
			return nil, err
		}
	}
	settle()

	// Plant: path — a dependent chain of pending spends through fresh
	// wallets (each spends the previous unconfirmed output).
	pathWallets := make([]*bitcoin.Wallet, 4)
	for i := range pathWallets {
		pathWallets[i] = bitcoin.NewWallet(fmt.Sprintf("plant-path%d", i), rng)
	}
	head, err := wallets[2].Pay(home.Chain.UTXO(),
		[]bitcoin.Payment{{To: pathWallets[0].PubKey(), Amount: 8 * bitcoin.Coin}}, 500, promised())
	if err != nil {
		return nil, fmt.Errorf("workload: path plant head: %w", err)
	}
	if err := home.SubmitTx(head); err != nil {
		return nil, err
	}
	settle()
	plant.PathPks = append(plant.PathPks, relmap.PubKeyString(pathWallets[0].PubKey()))
	prev := head
	for i := 1; i < len(pathWallets); i++ {
		amount := bitcoin.Amount(8-2*i) * bitcoin.Coin
		if amount <= 0 {
			amount = bitcoin.Coin / 2
		}
		next, err := pathWallets[i-1].SpendOutpoint(home.Mempool.View(),
			bitcoin.OutPoint{TxID: prev.ID(), Index: 0},
			[]bitcoin.Payment{{To: pathWallets[i].PubKey(), Amount: amount}}, 200)
		if err != nil {
			return nil, fmt.Errorf("workload: path plant hop %d: %w", i, err)
		}
		if err := home.SubmitTx(next); err != nil {
			return nil, err
		}
		settle()
		plant.PathPks = append(plant.PathPks, relmap.PubKeyString(pathWallets[i].PubKey()))
		prev = next
	}

	// Plant: star — one wallet spends three distinct confirmed outputs
	// in three compatible pending transactions. Fund it with a
	// confirmed fanout first.
	star := bitcoin.NewWallet("plant-star", rng)
	plant.StarPk = relmap.PubKeyString(star.PubKey())
	starFund, err := wallets[3].Pay(home.Chain.UTXO(), []bitcoin.Payment{
		{To: star.PubKey(), Amount: 2 * bitcoin.Coin},
		{To: star.PubKey(), Amount: 2 * bitcoin.Coin},
		{To: star.PubKey(), Amount: 2 * bitcoin.Coin},
	}, 500, promised())
	if err != nil {
		return nil, fmt.Errorf("workload: star plant funding: %w", err)
	}
	if err := home.SubmitTx(starFund); err != nil {
		return nil, err
	}
	settle()
	if err := mine(); err != nil { // confirm the star funding
		return nil, err
	}
	plant.StarSize = 0
	for _, op := range home.Chain.UTXO().ByOwner(star.PubKey()) {
		dst := bitcoin.NewWallet(fmt.Sprintf("plant-star-dst%d", plant.StarSize), rng)
		tx, err := star.SpendOutpoint(home.Chain.UTXO(), op,
			[]bitcoin.Payment{{To: dst.PubKey(), Amount: bitcoin.Coin}}, 300)
		if err != nil {
			continue
		}
		if err := home.SubmitTx(tx); err == nil {
			plant.StarSize++
		}
	}
	settle()

	// Plant: aggregate — reuse the star wallet's received outputs. Its
	// confirmed funding (3 × 2 coins) is the floor; pending payments to
	// it raise the reachable total.
	plant.AggPk = plant.StarPk
	aggExtra, err := wallets[4%len(wallets)].Pay(home.Chain.UTXO(),
		[]bitcoin.Payment{{To: star.PubKey(), Amount: 3 * bitcoin.Coin}}, 400, promised())
	if err == nil {
		if err := home.SubmitTx(aggExtra); err != nil {
			return nil, err
		}
	}
	settle()

	// Background pending traffic.
	for i := 0; i < cfg.Pending; i++ {
		randomPayment()
	}
	settle()

	// Double spends: partition the network and feed conflicting
	// payments to each side; the dataset's pending set is the union of
	// two mempools, which therefore contains real contradictions.
	other := net.Nodes[len(net.Nodes)-1]
	half := make([]int, 0, len(net.Nodes)/2)
	for i := 0; i < len(net.Nodes)/2; i++ {
		half = append(half, i)
	}
	net.Partition(half)
	injected := 0
	for attempt := 0; injected < cfg.DoubleSpends && attempt < cfg.DoubleSpends*8; attempt++ {
		w := wallets[attempt%len(wallets)]
		avoid := promised()
		for _, tx := range other.Mempool.Transactions() {
			for _, in := range tx.Ins {
				avoid[in.Prev] = true
			}
		}
		for _, op := range home.Chain.UTXO().ByOwner(w.PubKey()) {
			if avoid[op] {
				continue
			}
			out, _ := home.Chain.UTXO().Output(op)
			if out.Value < bitcoin.Coin {
				continue
			}
			amount := out.Value / 2
			a, errA := w.SpendOutpoint(home.Chain.UTXO(), op,
				[]bitcoin.Payment{{To: wallets[rng.Intn(len(wallets))].PubKey(), Amount: amount}}, 300)
			b, errB := w.SpendOutpoint(home.Chain.UTXO(), op,
				[]bitcoin.Payment{{To: w.PubKey(), Amount: amount}}, 400)
			if errA != nil || errB != nil {
				continue
			}
			if home.SubmitTx(a) != nil || other.SubmitTx(b) != nil {
				continue
			}
			settle()
			injected++
			break
		}
	}

	// The dataset: home's chain, plus the union of both sides' pools.
	union := append(home.Mempool.Transactions(), other.Mempool.Transactions()...)
	db, err := relmap.DatabaseFromPending(home.Chain, union)
	if err != nil {
		return nil, err
	}
	// Aggregate plant bookkeeping from the mapped database.
	plant.AggReachable, plant.AggUnionTotal = aggTotals(db, plant.AggPk)

	ds := &Dataset{DB: db, Plant: plant}
	ds.Stats = Stats{
		Blocks:              home.Chain.Height() + 1,
		Transactions:        countChainTxs(home),
		Inputs:              db.State.Count("TxIn"),
		Outputs:             db.State.Count("TxOut"),
		PendingTransactions: len(db.Pending),
	}
	for _, tx := range db.Pending {
		ds.Stats.PendingInputs += len(tx.Tuples("TxIn"))
		ds.Stats.PendingOutputs += len(tx.Tuples("TxOut"))
	}
	return ds, nil
}

func countChainTxs(nd *netsim.Node) int {
	n := 0
	for _, h := range nd.Chain.MainChain() {
		b, _ := nd.Chain.Block(h)
		n += len(b.Txs)
	}
	return n
}

// aggTotals computes the aggregate plant's totals over the mapped
// database: the union total sums every TxOut row to the key across
// R ∪ ∪T (no world exceeds it), and the reachable total sums the rows
// in one genuine possible world — the greedy maximal world over all
// pending transactions (conflicting double-spends drop out during the
// fixpoint, so the world is valid).
func aggTotals(db *possible.DB, pk string) (reachable, union int64) {
	sumTo := func(v relation.View) int64 {
		var total int64
		cols := []int{db.State.Schema("TxOut").MustCol("pk")}
		key := value.NewTuple(value.Str(pk)).Key()
		v.Lookup("TxOut", cols, key, func(t value.Tuple) bool {
			total += t[3].AsInt()
			return true
		})
		return total
	}
	all := make([]int, len(db.Pending))
	for i := range all {
		all[i] = i
	}
	world, _ := db.GetMaximal(all)
	reachable = sumTo(world)
	union = sumTo(relation.NewOverlay(db.State, db.Pending...))
	return reachable, union
}
