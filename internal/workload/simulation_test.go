package workload

import (
	"context"
	"testing"

	"blockchaindb/internal/core"
)

func smallSimConfig(seed int64) SimConfig {
	return SimConfig{Seed: seed, Nodes: 4, Wallets: 6, Blocks: 5, TxPerBlock: 3, Pending: 10, DoubleSpends: 2}
}

func TestGenerateFromSimulation(t *testing.T) {
	ds, err := GenerateFromSimulation(smallSimConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Stats
	if st.Transactions == 0 || st.Outputs == 0 || st.PendingTransactions == 0 {
		t.Fatalf("empty simulation stats: %+v", st)
	}
	if len(ds.DB.Pending) != st.PendingTransactions {
		t.Errorf("pending stat mismatch: %d vs %d", len(ds.DB.Pending), st.PendingTransactions)
	}
	// The union of two mempools contains genuine contradictions.
	conflicts := 0
	for i := range ds.DB.Pending {
		for j := i + 1; j < len(ds.DB.Pending); j++ {
			if !ds.DB.Constraints.FDCompatible(ds.DB.Pending[i], ds.DB.Pending[j]) {
				conflicts++
			}
		}
	}
	if conflicts == 0 {
		t.Error("partitioned double spends produced no contradictions")
	}
	// Plants recorded.
	if ds.Plant.SimplePk == "" || len(ds.Plant.PathPks) != 4 || ds.Plant.StarSize == 0 {
		t.Fatalf("plants incomplete: %+v", ds.Plant)
	}
	if ds.Plant.AggReachable <= 0 || ds.Plant.AggUnionTotal < ds.Plant.AggReachable {
		t.Errorf("aggregate totals inconsistent: %+v", ds.Plant)
	}
}

// TestSimulationPlantedQueriesBehave is the simulation counterpart of
// the synthetic generator's contract: satisfied instantiations check
// out satisfied, unsatisfied ones violated, across the query families.
func TestSimulationPlantedQueriesBehave(t *testing.T) {
	ds, err := GenerateFromSimulation(smallSimConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind QueryKind
		size int
	}{
		{QuerySimple, 0},
		{QueryPath, 2}, {QueryPath, 3}, {QueryPath, 4},
		{QueryStar, 1}, {QueryStar, ds.Plant.StarSize},
		{QueryAggregate, 0},
	}
	for _, cs := range cases {
		for _, satisfied := range []bool{true, false} {
			q, err := ds.Query(cs.kind, cs.size, satisfied)
			if err != nil {
				t.Fatalf("%v/%d: %v", cs.kind, cs.size, err)
			}
			algo := core.AlgoOpt
			if !q.IsConnected() {
				algo = core.AlgoNaive
			}
			res, err := core.Check(context.Background(), ds.DB, q, core.Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("%v/%d: %v", cs.kind, cs.size, err)
			}
			if res.Satisfied != satisfied {
				t.Errorf("%v size %d satisfied=%v: Check returned %v",
					cs.kind, cs.size, satisfied, res.Satisfied)
			}
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	a, err := GenerateFromSimulation(smallSimConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFromSimulation(smallSimConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if !a.DB.State.Equal(b.DB.State) {
		t.Error("same seed produced different simulated states")
	}
	if len(a.DB.Pending) != len(b.DB.Pending) {
		t.Error("same seed produced different pending sets")
	}
}
