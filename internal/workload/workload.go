// Package workload synthesizes blockchain databases with the
// structural statistics of the paper's experimental datasets: a
// committed current state of Bitcoin-shaped transactions (D100/D200/
// D300 analogues), a pending set drawn from subsequent "blocks",
// injected functional-dependency contradictions (double spends), and
// planted patterns that the paper's four denial-constraint families
// (qs, qp_i, qr_i, qa_n) can be aimed at with satisfied or unsatisfied
// constant choices.
//
// The paper used the first 100k–300k real Bitcoin blocks; we have no
// network, so this generator reproduces the drivers of algorithm cost
// instead: relation sizes, pending-transaction counts, conflict
// density, and the dependency / connectivity structure among pending
// transactions.
package workload

import (
	"fmt"
	"math/rand"

	"blockchaindb/internal/constraint"
	"blockchaindb/internal/possible"
	"blockchaindb/internal/relation"
	"blockchaindb/internal/value"
)

// Config controls dataset generation. All sizes are exact except where
// noted. The zero value is not valid; use DefaultConfig or a preset.
type Config struct {
	Seed int64
	// Blocks and TxPerBlock shape the committed state R.
	Blocks     int
	TxPerBlock int
	// Users is the size of the address population.
	Users int
	// PendingBlocks and PendingTxPerBlock shape the pending set T.
	PendingBlocks     int
	PendingTxPerBlock int
	// Contradictions is the number of extra pending transactions that
	// deliberately double-spend another pending transaction's input.
	Contradictions int
	// ChainProb is the probability a pending transaction spends the
	// output of an earlier pending transaction (dependency chains).
	ChainProb float64
	// MaxOuts bounds outputs per transaction (at least 1).
	MaxOuts int
}

// DefaultConfig mirrors the paper's default setting at laptop scale:
// the D200-analogue state, ~20 pending blocks, 20 contradictions.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Blocks:            200,
		TxPerBlock:        36,
		Users:             500,
		PendingBlocks:     20,
		PendingTxPerBlock: 12,
		Contradictions:    20,
		ChainProb:         0.3,
		MaxOuts:           3,
	}
}

// Stats summarizes a generated dataset, matching the columns of the
// paper's Table 1.
type Stats struct {
	Blocks       int
	Transactions int
	Inputs       int
	Outputs      int

	PendingBlocks       int
	PendingTransactions int
	PendingInputs       int
	PendingOutputs      int
}

// Plant records the constants deliberately embedded in the pending set
// so each query family has both violated ("unsatisfied constraint")
// and safe ("satisfied") instantiations.
type Plant struct {
	// SimplePk receives an output only inside a pending transaction:
	// qs over it is violated; over AbsentPk it is satisfied.
	SimplePk string
	AbsentPk string
	// PathPks are the owners along a planted spend chain of pending
	// transactions: PathPks[0] owns the output consumed by the chain's
	// second transaction, etc. A path query of size i uses PathPks[0]
	// and PathPks[i-2].
	PathPks []string
	// StarPk spends, in StarSize mutually compatible pending
	// transactions, to distinct recipients.
	StarPk   string
	StarSize int
	// AggPk receives outputs in state and compatible pending
	// transactions. AggReachable is a total achievable in some possible
	// world; AggUnionTotal is the total over R ∪ ∪T (no world exceeds
	// it).
	AggPk         string
	AggReachable  int64
	AggUnionTotal int64
}

// Dataset is a generated blockchain database plus its bookkeeping.
type Dataset struct {
	DB    *possible.DB
	Stats Stats
	Plant Plant
}

// Schema registers the Example 1 relations with integer transaction
// ids and satoshi amounts.
func Schema() *relation.State {
	s := relation.NewState()
	s.MustAddSchema(relation.NewSchema("TxOut",
		"txId:int", "ser:int", "pk:string", "amount:int"))
	s.MustAddSchema(relation.NewSchema("TxIn",
		"prevTxId:int", "prevSer:int", "pk:string", "amount:int", "newTxId:int", "sig:string"))
	return s
}

// Constraints builds the paper's keys and inclusion dependencies.
func Constraints(s *relation.State) *constraint.Set {
	return constraint.MustNewSet(s,
		[]*constraint.FD{
			constraint.NewKey(s.Schema("TxOut"), "txId", "ser"),
			constraint.NewKey(s.Schema("TxIn"), "prevTxId", "prevSer"),
		},
		[]*constraint.IND{
			constraint.NewIND("TxIn", []string{"prevTxId", "prevSer", "pk", "amount"},
				"TxOut", []string{"txId", "ser", "pk", "amount"}),
			constraint.NewIND("TxIn", []string{"newTxId"}, "TxOut", []string{"txId"}),
		})
}

type outRef struct {
	tx     int64
	ser    int64
	pk     string
	amount int64
}

type generator struct {
	cfg    Config
	rng    *rand.Rand
	state  *relation.State
	nextTx int64
	// unspent is the state's spendable pool during state generation,
	// then the base pool for pending generation.
	unspent []outRef
	stats   Stats
}

func user(i int) string { return fmt.Sprintf("U%dPk", i) }

func sig(pk string) string { return pk + "Sig" }

// Generate builds a dataset from the configuration. Generation is
// deterministic per seed. The result's database always satisfies its
// constraints (contradictions live only among pending transactions,
// never inside the state).
func Generate(cfg Config) *Dataset {
	if cfg.MaxOuts < 1 {
		cfg.MaxOuts = 1
	}
	if cfg.Users < 10 {
		cfg.Users = 10
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), state: Schema(), nextTx: 1}
	g.mintGenesis()
	g.generateState()
	ds := &Dataset{}
	pending, plant := g.generatePending(ds)
	ds.Stats = g.stats
	ds.Plant = plant
	cons := Constraints(g.state)
	db, err := possible.New(g.state, cons, pending)
	if err != nil {
		// Generation guarantees consistency; a failure is a bug.
		panic(fmt.Sprintf("workload: generated inconsistent dataset: %v", err))
	}
	ds.DB = db
	return ds
}

// mintGenesis creates origin outputs (transactions with no inputs,
// like coinbases) so the economy has funds.
func (g *generator) mintGenesis() {
	for u := 0; u < g.cfg.Users; u++ {
		txID := g.nextTx
		g.nextTx++
		amount := int64(g.rng.Intn(900) + 100)
		g.emitOut(txID, 1, user(u), amount, nil)
		g.stats.Transactions++
	}
	g.stats.Blocks++ // the genesis "block"
}

// emitOut inserts a TxOut row into the state (tx == nil) or adds it to
// the pending transaction, and registers it in the unspent pool when
// pool is wanted (state rows only; pending outputs are pooled by the
// caller).
func (g *generator) emitOut(txID, ser int64, pk string, amount int64, tx *relation.Transaction) {
	row := value.NewTuple(value.Int(txID), value.Int(ser), value.Str(pk), value.Int(amount))
	if tx == nil {
		g.state.MustInsert("TxOut", row)
		g.stats.Outputs++
		g.unspent = append(g.unspent, outRef{txID, ser, pk, amount})
		return
	}
	tx.Add("TxOut", row)
	g.stats.PendingOutputs++
}

// emitIn inserts a TxIn row consuming ref and creating newTx.
func (g *generator) emitIn(ref outRef, newTx int64, tx *relation.Transaction) {
	row := value.NewTuple(value.Int(ref.tx), value.Int(ref.ser), value.Str(ref.pk),
		value.Int(ref.amount), value.Int(newTx), value.Str(sig(ref.pk)))
	if tx == nil {
		g.state.MustInsert("TxIn", row)
		g.stats.Inputs++
		return
	}
	tx.Add("TxIn", row)
	g.stats.PendingInputs++
}

// takeUnspent removes and returns a random pool entry.
func (g *generator) takeUnspent() (outRef, bool) {
	if len(g.unspent) == 0 {
		return outRef{}, false
	}
	i := g.rng.Intn(len(g.unspent))
	ref := g.unspent[i]
	g.unspent[i] = g.unspent[len(g.unspent)-1]
	g.unspent = g.unspent[:len(g.unspent)-1]
	return ref, true
}

// splitAmount divides total into n positive parts.
func (g *generator) splitAmount(total int64, n int) []int64 {
	if int64(n) > total {
		n = int(total)
		if n == 0 {
			n = 1
		}
	}
	parts := make([]int64, n)
	remaining := total
	for i := 0; i < n-1; i++ {
		max := remaining - int64(n-1-i)
		share := int64(1)
		if max > 1 {
			share = 1 + g.rng.Int63n(max)
		}
		parts[i] = share
		remaining -= share
	}
	parts[n-1] = remaining
	return parts
}

// generateState commits Blocks × TxPerBlock transactions.
func (g *generator) generateState() {
	for b := 0; b < g.cfg.Blocks; b++ {
		g.stats.Blocks++
		for t := 0; t < g.cfg.TxPerBlock; t++ {
			ref, ok := g.takeUnspent()
			if !ok {
				return
			}
			txID := g.nextTx
			g.nextTx++
			g.emitIn(ref, txID, nil)
			nOuts := 1 + g.rng.Intn(g.cfg.MaxOuts)
			for i, amt := range g.splitAmount(ref.amount, nOuts) {
				g.emitOut(txID, int64(i+1), user(g.rng.Intn(g.cfg.Users)), amt, nil)
			}
			g.stats.Transactions++
		}
	}
}

// pendingTx builds one pending transaction consuming the refs and
// paying the recipients; it returns the transaction and the outputs it
// created.
func (g *generator) pendingTx(refs []outRef, recipients []string) (*relation.Transaction, []outRef, int64) {
	txID := g.nextTx
	g.nextTx++
	tx := relation.NewTransaction(fmt.Sprintf("P%d", txID))
	var total int64
	for _, ref := range refs {
		g.emitIn(ref, txID, tx)
		total += ref.amount
	}
	parts := g.splitAmount(total, len(recipients))
	var created []outRef
	for i, amt := range parts {
		pk := recipients[i%len(recipients)]
		g.emitOut(txID, int64(i+1), pk, amt, tx)
		created = append(created, outRef{txID, int64(i + 1), pk, amt})
	}
	g.stats.PendingTransactions++
	return tx, created, txID
}

// generatePending builds the pending set: plants first (so they exist
// at every configuration), then random traffic, then contradictions.
func (g *generator) generatePending(ds *Dataset) ([]*relation.Transaction, Plant) {
	var pending []*relation.Transaction
	var pendingPool []outRef // outputs created by pending txs, spendable by later pending txs
	plant := Plant{AbsentPk: "NoSuchPk"}

	// --- Plant: simple. A fresh address paid only in a pending tx.
	plant.SimplePk = "PlantSimplePk"
	if ref, ok := g.takeUnspent(); ok {
		tx, _, _ := g.pendingTx([]outRef{ref}, []string{plant.SimplePk})
		pending = append(pending, tx)
	}

	// --- Plant: path. A chain of 6 pending transactions; the paper
	// varies path queries over sizes 2–5, which need up to 5 hops.
	const pathLen = 6
	if ref, ok := g.takeUnspent(); ok {
		cur := ref
		for h := 0; h < pathLen; h++ {
			owner := fmt.Sprintf("PlantPath%dPk", h)
			tx, created, _ := g.pendingTx([]outRef{cur}, []string{owner})
			pending = append(pending, tx)
			plant.PathPks = append(plant.PathPks, owner)
			cur = created[0]
		}
	}

	// --- Plant: star. One address spends in 6 compatible pending
	// transactions to distinct recipients. Fund it with committed
	// outputs first (mint if needed).
	plant.StarPk = "PlantStarPk"
	plant.StarSize = 6
	for sIdx := 0; sIdx < plant.StarSize; sIdx++ {
		starRef := g.mintTo(plant.StarPk, int64(g.rng.Intn(400)+100))
		recipient := fmt.Sprintf("PlantStarDst%dPk", sIdx)
		tx, _, _ := g.pendingTx([]outRef{starRef}, []string{recipient})
		pending = append(pending, tx)
	}

	// --- Plant: aggregate. An address receiving committed and pending
	// outputs; all its pending receipts are mutually compatible.
	plant.AggPk = "PlantAggPk"
	aggState := g.mintTo(plant.AggPk, 500)
	plant.AggReachable = aggState.amount
	plant.AggUnionTotal = aggState.amount
	for i := 0; i < 4; i++ {
		ref, ok := g.takeUnspent()
		if !ok {
			break
		}
		tx, created, _ := g.pendingTx([]outRef{ref}, []string{plant.AggPk})
		pending = append(pending, tx)
		for _, c := range created {
			plant.AggReachable += c.amount
			plant.AggUnionTotal += c.amount
		}
	}

	// --- Random pending traffic.
	target := g.cfg.PendingBlocks * g.cfg.PendingTxPerBlock
	for len(pending) < target {
		var ref outRef
		if len(pendingPool) > 0 && g.rng.Float64() < g.cfg.ChainProb {
			i := g.rng.Intn(len(pendingPool))
			ref = pendingPool[i]
			pendingPool[i] = pendingPool[len(pendingPool)-1]
			pendingPool = pendingPool[:len(pendingPool)-1]
		} else {
			var ok bool
			ref, ok = g.takeUnspent()
			if !ok {
				break
			}
		}
		nOuts := 1 + g.rng.Intn(g.cfg.MaxOuts)
		recipients := make([]string, nOuts)
		for i := range recipients {
			recipients[i] = user(g.rng.Intn(g.cfg.Users))
		}
		tx, created, _ := g.pendingTx([]outRef{ref}, recipients)
		pending = append(pending, tx)
		pendingPool = append(pendingPool, created...)
	}

	// --- Contradictions: double-spend the input of a random existing
	// pending transaction (skipping plants so planted paths stay
	// reachable in at least one world... conflicts with plants would
	// still be sound, but keeping them separate makes the experiments'
	// "satisfied vs unsatisfied" framing stable).
	plantCount := 1 + pathLen + plant.StarSize + 4
	if plantCount > len(pending) {
		plantCount = len(pending)
	}
	randoms := pending[plantCount:]
	for c := 0; c < g.cfg.Contradictions && len(randoms) > 0; c++ {
		victim := randoms[g.rng.Intn(len(randoms))]
		ins := victim.Tuples("TxIn")
		if len(ins) == 0 {
			continue
		}
		src := ins[0]
		ref := outRef{
			tx:     src[0].AsInt(),
			ser:    src[1].AsInt(),
			pk:     src[2].AsString(),
			amount: src[3].AsInt(),
		}
		tx, _, _ := g.pendingTx([]outRef{ref}, []string{user(g.rng.Intn(g.cfg.Users))})
		pending = append(pending, tx)
	}

	g.stats.PendingBlocks = g.cfg.PendingBlocks
	return pending, plant
}

// mintTo inserts a fresh no-input output owned by pk into the state.
func (g *generator) mintTo(pk string, amount int64) outRef {
	txID := g.nextTx
	g.nextTx++
	row := value.NewTuple(value.Int(txID), value.Int(1), value.Str(pk), value.Int(amount))
	g.state.MustInsert("TxOut", row)
	g.stats.Outputs++
	g.stats.Transactions++
	return outRef{txID, 1, pk, amount}
}
