package workload

import (
	"context"
	"testing"

	"blockchaindb/internal/core"
	"blockchaindb/internal/query"
)

func smallConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		Blocks:            10,
		TxPerBlock:        8,
		Users:             40,
		PendingBlocks:     4,
		PendingTxPerBlock: 6,
		Contradictions:    5,
		ChainProb:         0.3,
		MaxOuts:           3,
	}
}

func TestGenerateConsistent(t *testing.T) {
	ds := Generate(smallConfig(1))
	// possible.New inside Generate already verified R |= I; check the
	// stats add up.
	st := ds.Stats
	if st.Transactions == 0 || st.Inputs == 0 || st.Outputs == 0 {
		t.Errorf("empty state stats: %+v", st)
	}
	if st.PendingTransactions != len(ds.DB.Pending) {
		t.Errorf("pending stat %d != actual %d", st.PendingTransactions, len(ds.DB.Pending))
	}
	if st.Outputs != ds.DB.State.Count("TxOut") {
		t.Errorf("outputs stat %d != rows %d", st.Outputs, ds.DB.State.Count("TxOut"))
	}
	if st.Inputs != ds.DB.State.Count("TxIn") {
		t.Errorf("inputs stat %d != rows %d", st.Inputs, ds.DB.State.Count("TxIn"))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if !a.DB.State.Equal(b.DB.State) {
		t.Error("same seed produced different states")
	}
	if len(a.DB.Pending) != len(b.DB.Pending) {
		t.Error("same seed produced different pending sets")
	}
	c := Generate(smallConfig(8))
	if a.DB.State.Equal(c.DB.State) {
		t.Error("different seeds produced identical states")
	}
}

func TestContradictionCount(t *testing.T) {
	for _, want := range []int{0, 5, 15} {
		cfg := smallConfig(3)
		cfg.Contradictions = want
		ds := Generate(cfg)
		// Count conflicting pairs via the constraint set.
		conflicts := 0
		for i := range ds.DB.Pending {
			for j := i + 1; j < len(ds.DB.Pending); j++ {
				if !ds.DB.Constraints.FDCompatible(ds.DB.Pending[i], ds.DB.Pending[j]) {
					conflicts++
				}
			}
		}
		if conflicts < want {
			t.Errorf("Contradictions=%d produced only %d conflicting pairs", want, conflicts)
		}
		// Without injected contradictions the generator produces none.
		if want == 0 && conflicts != 0 {
			t.Errorf("spontaneous conflicts: %d", conflicts)
		}
	}
}

// TestPlantedQueriesBehave is the generator's core contract: for every
// query family, the "satisfied" instantiation must be satisfied and the
// "unsatisfied" one violated, as decided by the paper's algorithms.
func TestPlantedQueriesBehave(t *testing.T) {
	ds := Generate(smallConfig(11))
	type c struct {
		kind QueryKind
		size int
	}
	cases := []c{
		{QuerySimple, 0},
		{QueryPath, 2}, {QueryPath, 3}, {QueryPath, 4}, {QueryPath, 5}, {QueryPath, 6},
		{QueryStar, 1}, {QueryStar, 3}, {QueryStar, 6},
		{QueryAggregate, 0},
	}
	for _, cs := range cases {
		for _, satisfied := range []bool{true, false} {
			q, err := ds.Query(cs.kind, cs.size, satisfied)
			if err != nil {
				t.Fatalf("%v/%d: %v", cs.kind, cs.size, err)
			}
			algo := core.AlgoOpt
			if !q.IsConnected() {
				algo = core.AlgoNaive
			}
			res, err := core.Check(context.Background(), ds.DB, q, core.Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("%v/%d: %v", cs.kind, cs.size, err)
			}
			if res.Satisfied != satisfied {
				t.Errorf("%v size %d satisfied=%v: Check returned %v",
					cs.kind, cs.size, satisfied, res.Satisfied)
			}
		}
	}
}

func TestQueryShapes(t *testing.T) {
	// qp3 shape: 2 TxOut + 2 TxIn atoms, connected, monotone.
	q := MustPathQuery(3, "X", "Y")
	if len(q.Atoms) != 4 {
		t.Errorf("qp3 atoms = %d", len(q.Atoms))
	}
	if !q.IsConnected() || !q.IsMonotonic() {
		t.Error("qp3 must be connected and monotonic")
	}
	// qr3: 3 pairs + 3 inequalities.
	qr := MustStarQuery(3, "X")
	if len(qr.Atoms) != 6 || len(qr.Comparisons) != 3 {
		t.Errorf("qr3 shape: %d atoms, %d comparisons", len(qr.Atoms), len(qr.Comparisons))
	}
	if !qr.IsConnected() {
		t.Error("qr3 must be connected (all TxIn atoms share X)")
	}
	// qa: aggregate, monotone, not connected.
	qa := AggregateQuery("X", 100)
	if !qa.IsAggregate() || !qa.IsMonotonic() || qa.IsConnected() {
		t.Error("qa flags wrong")
	}
	// Errors.
	if _, err := PathQuery(1, "X", "Y"); err == nil {
		t.Error("path size 1 accepted")
	}
	if _, err := StarQuery(0, "X"); err == nil {
		t.Error("star size 0 accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	ds := Generate(smallConfig(2))
	if _, err := ds.Query(QueryPath, 1, false); err == nil {
		t.Error("path size below range accepted")
	}
	if _, err := ds.Query(QueryPath, 99, false); err == nil {
		t.Error("path size above range accepted")
	}
	if _, err := ds.Query(QueryStar, 99, false); err == nil {
		t.Error("star size above range accepted")
	}
	if _, err := ds.Query(QueryKind(42), 0, false); err == nil {
		t.Error("unknown kind accepted")
	}
	if MustPathQuery(2, "a", "b") == nil || MustStarQuery(1, "a") == nil {
		t.Error("must-builders returned nil")
	}
}

func TestKindString(t *testing.T) {
	want := map[QueryKind]string{
		QuerySimple: "qs", QueryPath: "qp", QueryStar: "qr",
		QueryAggregate: "qa", QueryKind(9): "query(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestScalingConfigs(t *testing.T) {
	// Dataset sizes scale with the block counts.
	small := Generate(smallConfig(5))
	cfg := smallConfig(5)
	cfg.Blocks *= 3
	big := Generate(cfg)
	if big.Stats.Transactions <= small.Stats.Transactions {
		t.Error("tripling blocks did not grow the state")
	}
}

// TestPlantedPathIsRealPath sanity-checks that the planted chain really
// forms dependent transactions (each unreachable without the previous).
func TestPlantedPathIsRealPath(t *testing.T) {
	ds := Generate(smallConfig(13))
	// The plants are the first transactions: index 0 is the simple
	// plant, 1..6 the path chain.
	if !ds.DB.IsReachable([]int{1}) {
		t.Fatal("path head unreachable")
	}
	if ds.DB.IsReachable([]int{2}) {
		t.Error("second path hop reachable without the first")
	}
	if !ds.DB.IsReachable([]int{1, 2, 3, 4, 5, 6}) {
		t.Error("full planted chain unreachable")
	}
}

// TestDefaultConfigRuns exercises the default (laptop-scale) dataset
// once and checks a path query end to end; kept moderate so the suite
// stays fast.
func TestDefaultConfigRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("default dataset generation in -short mode")
	}
	ds := Generate(DefaultConfig())
	if ds.Stats.Transactions < 1000 {
		t.Errorf("default dataset too small: %+v", ds.Stats)
	}
	q := ds.MustQuery(QueryPath, 3, true)
	res, err := core.Check(context.Background(), ds.DB, q, core.Options{Algorithm: core.AlgoOpt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Error("satisfied qp3 reported violated on default dataset")
	}
	var _ *query.Query = q
}
